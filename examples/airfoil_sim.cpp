// The Airfoil mini-app end to end: transonic bump-channel flow on an
// unstructured quad mesh through the OP2 API, with a backend sweep and
// the per-loop profile — the workflow of the paper's Sec. IV.
//
//   $ ./airfoil_sim [iterations]
#include <cstdio>
#include <cstdlib>

#include "airfoil/airfoil.hpp"
#include "apl/timer.hpp"

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 200;
  airfoil::Airfoil::Options opts;
  opts.nx = 120;
  opts.ny = 60;
  opts.bump = 0.08;

  std::printf("Airfoil: %dx%d cells, mach %.2f, %d iterations\n", opts.nx,
              opts.ny, airfoil::Constants{}.mach, iters);

  for (const apl::exec::Backend backend :
       {apl::exec::Backend::kSeq, apl::exec::Backend::kSimd, apl::exec::Backend::kThreads,
        apl::exec::Backend::kCudaSim}) {
    airfoil::Airfoil app(opts);
    app.ctx().set_backend(backend);
    apl::Timer t;
    const double rms = app.run(iters);
    std::printf("  backend %-8s: %6.2f s, final RMS residual %.3e\n",
                apl::exec::to_string(backend), t.seconds(), rms);
  }

  // Distributed run (4 simulated ranks, k-way partitioning), then print
  // crest acceleration — the physics the bump is there for.
  airfoil::Airfoil app(opts);
  app.enable_distributed(4, apl::graph::PartitionMethod::kKway);
  app.run(iters);
  const auto q = app.solution();
  const op2::index_t crest = opts.nx / 2;  // mid-bump, first cell row
  const double u_crest = q[4 * crest + 1] / q[4 * crest];
  const double u_inf = app.constants().qinf[1] / app.constants().qinf[0];
  std::printf("\ndistributed (4 ranks): halo traffic %llu bytes, "
              "u_crest/u_inf = %.3f (subsonic acceleration over the bump)\n",
              static_cast<unsigned long long>(
                  app.distributed()->comm().traffic().total_bytes()),
              u_crest / u_inf);
  std::printf("\nper-loop profile (distributed run):\n%s",
              app.ctx().profile().report().c_str());
  return 0;
}
