// The Airfoil mini-app end to end: transonic bump-channel flow on an
// unstructured quad mesh through the OP2 API, with a backend sweep and
// the per-loop profile — the workflow of the paper's Sec. IV.
//
//   $ ./airfoil_sim [iterations]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "airfoil/airfoil.hpp"
#include "apl/fault.hpp"
#include "apl/io/ckpt.hpp"
#include "apl/timer.hpp"
#include "op2/dist.hpp"

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 200;
  airfoil::Airfoil::Options opts;
  opts.nx = 120;
  opts.ny = 60;
  opts.bump = 0.08;

  std::printf("Airfoil: %dx%d cells, mach %.2f, %d iterations\n", opts.nx,
              opts.ny, airfoil::Constants{}.mach, iters);

  for (const apl::exec::Backend backend :
       {apl::exec::Backend::kSeq, apl::exec::Backend::kSimd, apl::exec::Backend::kThreads,
        apl::exec::Backend::kCudaSim}) {
    airfoil::Airfoil app(opts);
    app.ctx().set_backend(backend);
    apl::Timer t;
    const double rms = app.run(iters);
    std::printf("  backend %-8s: %6.2f s, final RMS residual %.3e\n",
                apl::exec::to_string(backend), t.seconds(), rms);
  }

  // Distributed run (4 simulated ranks, k-way partitioning) under the
  // resilience driver: checkpoint every 10 steps, and if a rank is killed
  // (OPAL_FAULTS="fail_rank=2@12") let the policy layer (OPAL_RESILIENCE)
  // retry, shrink the communicator, and resume from the last save. Then
  // print crest acceleration — the physics the bump is there for.
  airfoil::Airfoil app(opts);
  app.enable_distributed(4, apl::graph::PartitionMethod::kKway);
  op2::Distributed& dist = *app.distributed();
  apl::io::CheckpointStore store(
      (std::filesystem::temp_directory_path() / "airfoil_sim_ckpt").string());
  store.remove_files();
  for (int it = 0; it < iters;) {
    if (it % 10 == 0) dist.checkpoint(store, it);
    try {
      app.iteration();
      ++it;
    } catch (const apl::fault::RankFailure& e) {
      std::printf("  rank %d failed at iteration %d — recovering...\n",
                  e.rank(), it);
      // The structured path: the recovery verdict arrives as data (rung,
      // resume step, ledger deltas), not as exception text to parse.
      const apl::resilience::Outcome out = dist.recover_outcome(store);
      std::printf("  %s\n", out.summary().c_str());
      if (!out.ok) {
        std::fprintf(stderr, "unrecoverable: %s\n", out.error.c_str());
        return 1;
      }
      it = static_cast<int>(out.resume_step);
    }
  }
  const auto& tr = dist.comm().traffic();
  if (tr.retries() > 0 || tr.recoveries() > 0) {
    std::printf("  resilience: %llu retries, %llu shrinks, %llu recoveries "
                "(%.6f s, MTTR %.6f s), now %d ranks\n",
                static_cast<unsigned long long>(tr.retries()),
                static_cast<unsigned long long>(tr.shrinks()),
                static_cast<unsigned long long>(tr.recoveries()),
                tr.recovery_seconds(), tr.mttr(), dist.num_ranks());
  }
  const auto q = app.solution();
  const op2::index_t crest = opts.nx / 2;  // mid-bump, first cell row
  const double u_crest = q[4 * crest + 1] / q[4 * crest];
  const double u_inf = app.constants().qinf[1] / app.constants().qinf[0];
  std::printf("\ndistributed (%d ranks): halo traffic %llu bytes, "
              "u_crest/u_inf = %.3f (subsonic acceleration over the bump)\n",
              dist.num_ranks(),
              static_cast<unsigned long long>(tr.total_bytes()),
              u_crest / u_inf);
  std::printf("\nper-loop profile (distributed run):\n%s",
              app.ctx().profile().report().c_str());
  return 0;
}
