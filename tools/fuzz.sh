#!/usr/bin/env bash
# Randomized differential sweep over the OP2/OPS execution matrix (the
# apl::testkit fuzzer — see DESIGN.md §10 and the README quickstart).
#
#   tools/fuzz.sh                          # 200 seeds starting at 1
#   tools/fuzz.sh --iterations 2000        # longer sweep
#   tools/fuzz.sh --seed 480               # different starting seed
#   APL_TESTKIT_SEED=480 tools/fuzz.sh     # replay one reported failure
#
# Extra arguments are passed through to opal_fuzz (--op2-only, --ops-only,
# --max-ulps N, --no-shrink, --quiet). Builds the fuzzer if needed.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"

if [[ ! -d "$build" ]]; then
  cmake -S "$repo" -B "$build"
fi
cmake --build "$build" -j "$(nproc)" --target opal_fuzz

exec "$build/src/testkit/opal_fuzz" "$@"
