// bench_report: the perf-trajectory emitter behind BENCH_*.json.
//
// Runs the two tier-1 proxy apps (Airfoil on op2, lazy through the
// sparse-tiling engine; CloverLeaf on ops, both eager and lazy-tiled),
// collects every loop's Profile record
// (seconds, GB/s, bytes by access class, halo bytes, color/tile counts)
// and the roofline join against a machine model, and writes one JSON
// document per run plus the combined report.
//
//   bench_report [--out FILE] [--airfoil-iters N] [--clover-steps N]
//                [--machine NAME]
//   bench_report --check-trace FILE     # validate a Chrome trace dump
//   bench_report --check-plan-cache     # cold->warm plan cache gate
//   bench_report --check-resilience    # kill + transient recovery gate
//   bench_report --check-serve         # multi-tenant service soak gate
//   bench_report --check-op2-tiling    # eager vs lazy-tiled Airfoil gate
//
// --check-trace reuses apl::trace::validate_chrome_json, so the ci.sh
// trace stage exercises exactly the schema the tests assert.
// --check-plan-cache runs Airfoil and the CloverLeaf lazy chain cold
// (populating a scratch plan cache) then warm, and fails unless the warm
// run loads every plan from the cache, spends less time in plan analysis,
// and matches the cold output bitwise.
// --check-resilience runs a distributed Airfoil through one transient
// message fault (absorbed by retry) and one rank kill (answered by a
// communicator shrink), and fails unless the continuation is bitwise
// identical to a failure-free run at the surviving rank count restored
// from the same checkpoint. The report carries the recovery-overhead and
// MTTR columns either way.
// --check-serve runs a tenant mix (all three proxy apps plus a crash, a
// hang and a rank-death tenant) through one apl::serve server and fails
// unless the healthy tenants reproduce their solo digests bitwise, the
// crash is retried, the hang is stopped by the watchdog, and nothing
// else fails. The report carries throughput, latency and
// isolation-overhead columns either way.
// --check-op2-tiling runs the same Airfoil mesh eager and lazy-tiled
// (op2 sparse tiling, DESIGN.md §15) and fails unless every chain fused
// (zero verbatim replays), the inspector projected a traffic saving, and
// the tiled solution matches the eager one bitwise. It then reruns the
// schedule through the threaded color-round executor on a 2-member team
// (plus a reduction-free smoother chain, since airfoil's reduction
// chains take the serial fallback) and fails unless real rounds ran and
// both stayed bitwise-identical. The report's "airfoil" run executes
// lazy-tiled and carries the fused-chain columns.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "apl/exec.hpp"
#include "apl/fault.hpp"
#include "apl/io/ckpt.hpp"
#include "apl/io/plan_cache.hpp"
#include "op2/dist.hpp"
#include "apl/perf/machines.hpp"
#include "apl/perf/report.hpp"
#include "apl/profile.hpp"
#include "apl/serve/serve.hpp"
#include "apl/thread_pool.hpp"
#include "apl/trace.hpp"
#include "cloverleaf/cloverleaf_ops.hpp"
#include "ops/ops.hpp"

namespace {

struct Args {
  std::string out = "BENCH_pr10.json";
  std::string check_trace;
  std::string machine = "e5-2697v2";
  int airfoil_iters = 40;
  int clover_steps = 20;
  bool check_plan_cache = false;
  bool check_resilience = false;
  bool check_serve = false;
  bool check_op2_tiling = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out FILE] [--airfoil-iters N] "
               "[--clover-steps N] [--machine NAME]\n"
               "       %s --check-trace FILE\n"
               "       %s --check-plan-cache\n"
               "       %s --check-resilience\n"
               "       %s --check-serve\n"
               "       %s --check-op2-tiling\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// One run's record: the full Profile dump, the roofline join, and any
/// chain/tile statistics. `extra` is preformatted JSON members ("" or
/// ", \"k\": v...").
std::string run_json(const std::string& name, const apl::Profile& prof,
                     const apl::perf::Machine& machine,
                     const std::string& extra) {
  std::ostringstream os;
  os << "  {\"run\": \"" << name << "\",\n   \"profile\": " << prof.to_json()
     << ",\n   \"roofline\": " << apl::perf::roofline_json(prof, machine)
     << extra << "}";
  return os.str();
}

std::string chain_extra(const ops::ChainStats& cs) {
  std::ostringstream os;
  os << ",\n   \"chain\": {\"flushes\": " << cs.flushes
     << ", \"loops\": " << cs.loops << ", \"tiles\": " << cs.tiles
     << ", \"max_chain\": " << cs.max_chain
     << ", \"eager_bytes\": " << cs.eager_bytes
     << ", \"tiled_bytes\": " << cs.tiled_bytes
     << ", \"traffic_saved_fraction\": " << cs.traffic_saved_fraction()
     << "}";
  return os.str();
}

/// op2 flavour: the unstructured chains additionally count verbatim
/// (unfused fallback) replays, which the tiling gate requires to be zero.
std::string chain_extra(const op2::ChainStats& cs) {
  std::ostringstream os;
  os << ",\n   \"chain\": {\"flushes\": " << cs.flushes
     << ", \"loops\": " << cs.loops << ", \"tiles\": " << cs.tiles
     << ", \"verbatim\": " << cs.verbatim
     << ", \"max_chain\": " << cs.max_chain
     << ", \"eager_bytes\": " << cs.eager_bytes
     << ", \"tiled_bytes\": " << cs.tiled_bytes
     << ", \"traffic_saved_fraction\": " << cs.traffic_saved_fraction()
     << "}";
  return os.str();
}

// ---- plan cache: cold vs warm plan-analysis time ---------------------------

/// One cold->warm differential against a scratch plan cache directory.
struct CacheProbe {
  double cold_plan_seconds = 0.0;
  double warm_plan_seconds = 0.0;
  std::uint64_t cold_stores = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_misses = 0;
  std::uint64_t warm_corrupt = 0;
  bool bitwise_identical = false;

  double speedup() const {
    return warm_plan_seconds > 0.0 ? cold_plan_seconds / warm_plan_seconds
                                   : 0.0;
  }
  /// The acceptance gate: every warm plan came off disk (or the in-memory
  /// memo), nothing was rebuilt or rejected, and results did not move.
  bool ok() const {
    return cold_stores > 0 && warm_hits > 0 && warm_misses == 0 &&
           warm_corrupt == 0 && bitwise_identical &&
           warm_plan_seconds < cold_plan_seconds;
  }
};

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Runs `run` cold (fresh scratch cache, populating) and warm (replaying
/// from it), best-of-`kReps` on each side — plan analysis is sub-ms, so a
/// single sample is at the mercy of scheduler noise. `run` returns
/// {solution bits, plan seconds}.
template <typename RunFn>
CacheProbe probe_plan_cache(const std::string& tag, RunFn run) {
  constexpr int kReps = 3;
  auto& store = apl::plan_cache::Store::global();
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("bench_plan_cache_" + tag))
          .string();

  CacheProbe p;
  p.bitwise_identical = true;
  std::vector<double> cold_bits, bits;
  double s = 0.0;
  for (int r = 0; r < kReps; ++r) {
    std::filesystem::remove_all(dir);
    store.set_directory(dir);  // resets stats
    run(bits, s);
    p.cold_plan_seconds =
        r == 0 ? s : std::min(p.cold_plan_seconds, s);
    if (r == 0) cold_bits = bits;
    p.bitwise_identical = p.bitwise_identical && bits_equal(cold_bits, bits);
  }
  p.cold_stores = store.stats().stores;

  store.reset_stats();
  for (int r = 0; r < kReps; ++r) {
    run(bits, s);
    p.warm_plan_seconds =
        r == 0 ? s : std::min(p.warm_plan_seconds, s);
    p.bitwise_identical = p.bitwise_identical && bits_equal(cold_bits, bits);
  }
  // Stats accumulate over kReps warm runs; normalize to one run's worth.
  p.warm_hits = store.stats().hits / kReps;
  p.warm_misses = store.stats().misses;
  p.warm_corrupt = store.stats().corrupt;

  store.set_directory("");
  std::filesystem::remove_all(dir);
  return p;
}

// The probe meshes are larger than the bench runs': plan analysis scales
// with topology (coloring is O(edges), the tile dry-pass O(tiles)), while
// the warm path's hash+load+decode floor is near-constant, so a small
// mesh under-reports the warm win. Iteration counts stay minimal — plans
// are built once regardless.
CacheProbe probe_airfoil() {
  return probe_plan_cache("airfoil", [&](std::vector<double>& bits,
                                         double& plan_s) {
    airfoil::Airfoil::Options opts;
    opts.nx = 240;
    opts.ny = 120;
    airfoil::Airfoil app(opts);
    app.ctx().set_backend(apl::exec::Backend::kThreads);
    app.run(2);
    bits = app.solution();
    plan_s = app.ctx().plan_seconds();
  });
}

CacheProbe probe_clover_lazy() {
  return probe_plan_cache("clover", [&](std::vector<double>& bits,
                                        double& plan_s) {
    cloverleaf::Options opts;
    opts.nx = 192;
    opts.ny = 192;
    opts.lazy = true;
    cloverleaf::CloverOps app(opts);
    app.run(2);
    app.ctx().flush();
    bits = app.density();
    plan_s = app.ctx().plan_seconds();
  });
}

// ---- resilience: recovery overhead and MTTR of a faulted run ---------------

/// One faulted distributed Airfoil run: a transient message fault early on
/// (absorbed by the policy's bounded retry) and a rank kill mid-run
/// (answered by a communicator shrink + checkpoint restore). The ledger's
/// recovery accounting becomes the report's overhead/MTTR columns.
struct ResilienceProbe {
  double run_seconds = 0.0;       // faulted run, end to end
  double recovery_seconds = 0.0;  // time inside recovery (MTTR numerator)
  double mttr = 0.0;
  double retry_backoff_seconds = 0.0;
  double overhead_fraction = 0.0;  // recovery share of the faulted run
  std::uint64_t retries = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recovery_bytes = 0;
  int ranks_before = 0;
  int ranks_after = 0;
  bool bitwise_identical = false;

  /// The acceptance gate: the retry rung and the shrink rung both fired,
  /// and the continuation matched the failure-free reference bitwise.
  bool ok() const {
    return retries > 0 && shrinks == 1 && recoveries >= 1 &&
           ranks_after == ranks_before - 1 && bitwise_identical;
  }
};

ResilienceProbe probe_resilience() {
  constexpr int kRanks = 4;
  constexpr int kIters = 10;
  ResilienceProbe p;
  p.ranks_before = kRanks;
  const std::string base =
      (std::filesystem::temp_directory_path() / "bench_resilience_ckpt")
          .string();
  apl::io::CheckpointStore(base).remove_files();

  airfoil::Airfoil app{};
  app.enable_distributed(kRanks, apl::graph::PartitionMethod::kBlock);
  op2::Distributed& dist = *app.distributed();
  apl::io::CheckpointStore store(base);

  apl::fault::Config cfg;
  cfg.drop_msg = 30;  // transient: one dropped message, retried
  cfg.fail_rank = 2;  // permanent: rank 2 dies at the 12th exchange
  cfg.fail_at_exchange = 12;
  apl::fault::Injector::global().arm(cfg);
  const double t0 = apl::now_seconds();
  int it = 0;
  int restored_step = -1;
  while (it < kIters) {
    if (restored_step < 0 && it % 4 == 0) dist.checkpoint(store, it);
    try {
      app.iteration();
      ++it;
    } catch (const apl::fault::RankFailure&) {
      restored_step = static_cast<int>(dist.recover_auto(store));
      it = restored_step;
    }
  }
  apl::fault::Injector::global().disarm();
  p.run_seconds = apl::now_seconds() - t0;

  const auto& t = dist.comm().traffic();
  p.recovery_seconds = t.recovery_seconds();
  p.mttr = t.mttr();
  p.retry_backoff_seconds = t.retry_backoff_seconds();
  p.retries = t.retries();
  p.shrinks = t.shrinks();
  p.recoveries = t.recoveries();
  p.recovery_bytes = t.recovery_bytes();
  p.ranks_after = dist.num_ranks();
  p.overhead_fraction =
      p.run_seconds > 0.0 ? p.recovery_seconds / p.run_seconds : 0.0;

  if (restored_step >= 0) {
    // Failure-free reference at the surviving rank count, restored from
    // the same checkpoint: the shrunk continuation must match it bitwise.
    airfoil::Airfoil ref{};
    ref.enable_distributed(kRanks - 1, apl::graph::PartitionMethod::kBlock);
    const auto s0 = static_cast<int>(ref.distributed()->recover(store));
    for (int i = s0; i < kIters; ++i) ref.iteration();
    p.bitwise_identical = bits_equal(app.solution(), ref.solution());
  }
  store.remove_files();
  return p;
}

std::string resilience_json(const ResilienceProbe& p) {
  std::ostringstream os;
  os << "  {\"run\": \"airfoil_dist_faulted\""
     << ", \"run_seconds\": " << p.run_seconds
     << ", \"recovery_seconds\": " << p.recovery_seconds
     << ", \"recovery_overhead\": " << p.overhead_fraction
     << ", \"mttr_seconds\": " << p.mttr
     << ", \"retry_backoff_seconds\": " << p.retry_backoff_seconds
     << ", \"retries\": " << p.retries << ", \"shrinks\": " << p.shrinks
     << ", \"recoveries\": " << p.recoveries
     << ", \"recovery_bytes\": " << p.recovery_bytes
     << ", \"ranks_before\": " << p.ranks_before
     << ", \"ranks_after\": " << p.ranks_after
     << ", \"bitwise_identical\": " << (p.bitwise_identical ? "true" : "false")
     << "}";
  return os.str();
}

void print_resilience(const ResilienceProbe& p) {
  std::printf(
      "resilience       %d->%d ranks, %llu retries, %llu shrinks, "
      "recovery %.6fs of %.6fs (%.1f%%), MTTR %.6fs, bitwise %s\n",
      p.ranks_before, p.ranks_after,
      static_cast<unsigned long long>(p.retries),
      static_cast<unsigned long long>(p.shrinks), p.recovery_seconds,
      p.run_seconds, 100.0 * p.overhead_fraction, p.mttr,
      p.bitwise_identical ? "identical" : "DIVERGED");
}

// ---- serve: multi-tenant throughput, latency and isolation overhead --------

/// One server soak: a mixed tenant population (all three proxy apps) plus
/// a chaos subset (crash / hang / rank death) through one apl::serve
/// server. The gate demands bitwise isolation for the healthy tenants and
/// the named verdicts for the chaos ones; the columns record service
/// throughput, per-job latency, and the overhead of the per-job isolation
/// scopes relative to an unserved solo run.
struct ServeProbe {
  int jobs = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t retries = 0;
  std::uint64_t watchdog_kills = 0;
  double makespan_seconds = 0.0;
  double throughput_jobs_per_second = 0.0;
  double mean_latency_seconds = 0.0;  // admission -> terminal, completed jobs
  double max_latency_seconds = 0.0;
  double solo_seconds = 0.0;          // one airfoil run, no server
  double served_seconds = 0.0;        // the same run as a lone tenant
  double isolation_overhead = 0.0;    // served/solo - 1 (scope machinery)
  bool digests_match = false;         // healthy tenants == solo, bitwise
  bool hang_stopped = false;          // watchdog ended the hung tenant

  bool ok() const {
    return digests_match && hang_stopped && failed == 0 && retries >= 1 &&
           watchdog_kills >= 1 && completed > 0;
  }
};

/// Runs a job body outside any server (reference digest + wall time).
std::string serve_solo(const apl::serve::JobSpec& spec, double* seconds) {
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("bench_serve_solo_" + spec.name))
          .string();
  apl::io::CheckpointStore store(base);
  store.remove_files();
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);  // as the server would install it
  apl::serve::JobContext jc(spec.name, store, token, 0);
  const double t0 = apl::now_seconds();
  std::string digest = spec.work(jc);
  if (seconds != nullptr) *seconds = apl::now_seconds() - t0;
  store.remove_files();
  return digest;
}

ServeProbe probe_serve() {
  namespace serve = apl::serve;
  ServeProbe p;

  const serve::AirfoilJob airfoil_shape{};
  const serve::CloverJob clover_shape{};
  const serve::MiniHydraJob hydra_shape{};
  const std::string airfoil_solo =
      serve_solo(serve::make_airfoil_job("ref-a", airfoil_shape),
                 &p.solo_seconds);
  const std::string clover_solo =
      serve_solo(serve::make_clover_job("ref-c", clover_shape), nullptr);
  const std::string hydra_solo =
      serve_solo(serve::make_minihydra_job("ref-h", hydra_shape), nullptr);

  // Isolation overhead: the same airfoil run as the only tenant of an
  // otherwise idle single-worker server. Everything the service wraps
  // around a body (token, injector, policy, plan scopes, checkpoint
  // namespace) is in the difference.
  {
    serve::Server::Options opts;
    opts.workers = 1;
    serve::Server server(opts);
    const auto id = server.submit(
        serve::make_airfoil_job("overhead", airfoil_shape));
    const serve::JobReport rep = server.wait(id);
    p.served_seconds = rep.run_seconds;
    p.digests_match = rep.state == serve::State::kDone &&
                      rep.result == airfoil_solo;
  }
  p.isolation_overhead =
      p.solo_seconds > 0.0 ? p.served_seconds / p.solo_seconds - 1.0 : 0.0;

  // The soak proper: healthy tenants of every app family sharing the
  // server with a crash, a hang and a rank death.
  serve::Server::Options opts;
  opts.workers = 3;
  opts.watchdog_period_seconds = 0.02;
  opts.stall_seconds = 0.3;
  serve::Server server(opts);

  std::vector<std::pair<serve::JobId, const std::string*>> expect;
  const double t0 = apl::now_seconds();
  for (int i = 0; i < 2; ++i) {
    const std::string tag = std::to_string(i);
    expect.emplace_back(server.submit(serve::make_airfoil_job(
                            "airfoil-" + tag, airfoil_shape)),
                        &airfoil_solo);
    expect.emplace_back(server.submit(serve::make_clover_job(
                            "clover-" + tag, clover_shape)),
                        &clover_solo);
    expect.emplace_back(server.submit(serve::make_minihydra_job(
                            "hydra-" + tag, hydra_shape)),
                        &hydra_solo);
  }
  serve::JobSpec crash = serve::make_airfoil_job("crash", airfoil_shape);
  crash.faults = "kill_at_loop=40";
  expect.emplace_back(server.submit(std::move(crash)), &airfoil_solo);
  serve::JobSpec hang = serve::make_airfoil_job("hang", airfoil_shape);
  hang.faults = "hang_at_loop=40";
  hang.retries = 0;
  const serve::JobId hang_id = server.submit(std::move(hang));
  serve::JobSpec rankloss = serve::make_clover_job("rankloss", clover_shape);
  rankloss.faults = "fail_rank=1@6";
  expect.emplace_back(server.submit(std::move(rankloss)), &clover_solo);

  server.drain();
  p.makespan_seconds = apl::now_seconds() - t0;
  p.jobs = static_cast<int>(expect.size()) + 1;

  for (const auto& [id, solo] : expect) {
    const serve::JobReport rep = server.status(id);
    p.digests_match = p.digests_match &&
                      rep.state == serve::State::kDone && rep.result == *solo;
    const double latency = rep.queued_seconds + rep.run_seconds;
    p.mean_latency_seconds += latency;
    p.max_latency_seconds = std::max(p.max_latency_seconds, latency);
  }
  const serve::JobReport hang_rep = server.status(hang_id);
  p.hang_stopped =
      hang_rep.state == serve::State::kCancelled &&
      hang_rep.cancel_reason == apl::cancel::Reason::kStalled;

  const serve::ServerStats st = server.stats();
  p.completed = st.completed;
  p.failed = st.failed;
  p.cancelled = st.cancelled;
  p.retries = st.retries;
  p.watchdog_kills = st.watchdog_kills;
  if (!expect.empty()) {
    p.mean_latency_seconds /= static_cast<double>(expect.size());
  }
  if (p.makespan_seconds > 0.0) {
    p.throughput_jobs_per_second =
        static_cast<double>(p.completed) / p.makespan_seconds;
  }
  return p;
}

std::string serve_json(const ServeProbe& p) {
  std::ostringstream os;
  os << "  {\"run\": \"serve_soak\""
     << ", \"jobs\": " << p.jobs << ", \"completed\": " << p.completed
     << ", \"failed\": " << p.failed << ", \"cancelled\": " << p.cancelled
     << ", \"retries\": " << p.retries
     << ", \"watchdog_kills\": " << p.watchdog_kills
     << ", \"makespan_seconds\": " << p.makespan_seconds
     << ", \"throughput_jobs_per_second\": " << p.throughput_jobs_per_second
     << ", \"mean_latency_seconds\": " << p.mean_latency_seconds
     << ", \"max_latency_seconds\": " << p.max_latency_seconds
     << ", \"isolation_overhead\": " << p.isolation_overhead
     << ", \"digests_match\": " << (p.digests_match ? "true" : "false")
     << ", \"hang_stopped\": " << (p.hang_stopped ? "true" : "false") << "}";
  return os.str();
}

void print_serve(const ServeProbe& p) {
  std::printf(
      "serve            %d tenants: %llu done / %llu failed / %llu "
      "cancelled, %llu retries, %llu watchdog kills, %.2f jobs/s, "
      "latency mean %.3fs max %.3fs, isolation overhead %.1f%%, "
      "digests %s\n",
      p.jobs, static_cast<unsigned long long>(p.completed),
      static_cast<unsigned long long>(p.failed),
      static_cast<unsigned long long>(p.cancelled),
      static_cast<unsigned long long>(p.retries),
      static_cast<unsigned long long>(p.watchdog_kills),
      p.throughput_jobs_per_second, p.mean_latency_seconds,
      p.max_latency_seconds, 100.0 * p.isolation_overhead,
      p.digests_match ? "identical" : "DIVERGED");
}

// ---- op2 tiling: eager vs lazy-tiled Airfoil, fused-chain columns ----------

/// One eager-vs-lazy differential on the same Airfoil mesh, sized so the
/// auto tile sizing genuinely fuses (a fused chain's working set is
/// several times the tile cache budget). The gate is the tentpole's
/// contract: order-preserving sparse tiling is bitwise-invisible.
struct Op2TilingProbe {
  double eager_seconds = 0.0;
  double tiled_seconds = 0.0;
  double threaded_seconds = 0.0;
  op2::ChainStats chain;
  std::uint64_t rounds = 0;  ///< color rounds of the threaded smoother run
  bool bitwise_identical = false;
  bool threaded_bitwise = false;  ///< airfoil AND smoother teams matched

  double speedup() const {
    return tiled_seconds > 0.0 ? eager_seconds / tiled_seconds : 0.0;
  }
  /// The acceptance gate: chains formed and every one fused (no verbatim
  /// fallback), the inspector projected a real traffic saving, the tiled
  /// bits match the eager bits exactly, and the threaded color-round
  /// executor ran real rounds and stayed bitwise-identical too.
  bool ok() const {
    return chain.flushes > 0 && chain.verbatim == 0 && chain.max_chain >= 2 &&
           chain.tiled_bytes < chain.eager_bytes && bitwise_identical &&
           rounds > 0 && threaded_bitwise;
  }
};

/// Reduction-free gather/scatter smoother over a chain mesh: the shape the
/// color-round executor actually parallelizes (airfoil's chains all carry
/// the rms gbl reduction, so they take the documented serial fallback).
/// Value-dependent FP increments make the bitwise gate meaningful — any
/// round reordering would change summation order, not just timing.
std::vector<double> run_round_smoother(apl::ThreadPool* team,
                                       op2::ChainStats* stats) {
  using apl::exec::Access;
  constexpr op2::index_t kNodes = 4000;
  constexpr op2::index_t kEdges = kNodes - 1;
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(kNodes, "nodes");
  op2::Set& edges = ctx.decl_set(kEdges, "edges");
  std::vector<op2::index_t> table(2 * kEdges);
  for (op2::index_t e = 0; e < kEdges; ++e) {
    table[2 * e] = e;
    table[2 * e + 1] = e + 1;
  }
  op2::Map& e2n = ctx.decl_map(edges, nodes, 2, table, "e2n");
  std::vector<double> xi(kNodes), wi(kEdges, 0.0);
  for (op2::index_t i = 0; i < kNodes; ++i) {
    xi[static_cast<std::size_t>(i)] = 0.5 + 1e-4 * static_cast<double>(i);
  }
  op2::Dat<double>& x = ctx.decl_dat<double>(nodes, 1, xi, "x");
  op2::Dat<double>& w = ctx.decl_dat<double>(edges, 1, wi, "w");

  if (team != nullptr) ctx.set_tile_team(team);
  ctx.set_tile_size(64);
  ctx.set_lazy(true);
  for (int step = 0; step < 4; ++step) {
    op2::par_loop(
        ctx, "gather", edges,
        [](op2::Acc<double> we, op2::Acc<double> a, op2::Acc<double> b) {
          we[0] = a[0] + b[0];
        },
        op2::arg(w, Access::kWrite), op2::arg(x, e2n, 0, Access::kRead),
        op2::arg(x, e2n, 1, Access::kRead));
    op2::par_loop(
        ctx, "scatter", edges,
        [](op2::Acc<double> we, op2::Acc<double> a, op2::Acc<double> b) {
          a[0] += 0.125 * we[0];
          b[0] += 0.125 * we[0];
        },
        op2::arg(w, Access::kRead), op2::arg(x, e2n, 0, Access::kInc),
        op2::arg(x, e2n, 1, Access::kInc));
  }
  ctx.flush();
  if (stats != nullptr) *stats = ctx.chain_stats();
  return x.to_vector();
}

Op2TilingProbe probe_op2_tiling() {
  constexpr int kIters = 5;
  airfoil::Airfoil::Options opts;
  opts.nx = 120;  // ~864 KiB fused working set: several tiles per chain
  opts.ny = 60;
  Op2TilingProbe p;

  airfoil::Airfoil eager(opts);
  double t0 = apl::now_seconds();
  eager.run(kIters);
  p.eager_seconds = apl::now_seconds() - t0;
  const std::vector<double> ref = eager.solution();

  airfoil::Airfoil tiled(opts);
  tiled.ctx().set_lazy(true);
  t0 = apl::now_seconds();
  tiled.run(kIters);
  tiled.ctx().flush();
  p.tiled_seconds = apl::now_seconds() - t0;
  p.chain = tiled.ctx().chain_stats();
  p.bitwise_identical = bits_equal(ref, tiled.solution());

  // Threaded gates, on a 2-member team (meaningful round structure even
  // on a 1-core host). Airfoil's reduction chains must take the serial
  // fallback and still match bitwise; the reduction-free smoother must go
  // through real color rounds and match its own serial run bitwise.
  apl::ThreadPool team(2);
  airfoil::Airfoil threaded(opts);
  threaded.ctx().set_tile_team(&team);
  threaded.ctx().set_lazy(true);
  t0 = apl::now_seconds();
  threaded.run(kIters);
  threaded.ctx().flush();
  p.threaded_seconds = apl::now_seconds() - t0;
  const bool airfoil_bitwise = bits_equal(ref, threaded.solution());

  op2::ChainStats smoother_team_stats;
  const std::vector<double> smoother_serial = run_round_smoother(nullptr,
                                                                 nullptr);
  const std::vector<double> smoother_teamed =
      run_round_smoother(&team, &smoother_team_stats);
  p.rounds = smoother_team_stats.rounds;
  p.threaded_bitwise =
      airfoil_bitwise && bits_equal(smoother_serial, smoother_teamed);
  return p;
}

std::string op2_tiling_json(const Op2TilingProbe& p) {
  std::ostringstream os;
  os << "  {\"run\": \"airfoil_tiling_gate\""
     << ", \"eager_seconds\": " << p.eager_seconds
     << ", \"tiled_seconds\": " << p.tiled_seconds
     << ", \"speedup\": " << p.speedup()
     << ", \"flushes\": " << p.chain.flushes
     << ", \"loops\": " << p.chain.loops << ", \"tiles\": " << p.chain.tiles
     << ", \"verbatim\": " << p.chain.verbatim
     << ", \"max_chain\": " << p.chain.max_chain
     << ", \"eager_bytes\": " << p.chain.eager_bytes
     << ", \"tiled_bytes\": " << p.chain.tiled_bytes
     << ", \"traffic_saved_fraction\": " << p.chain.traffic_saved_fraction()
     << ", \"bitwise_identical\": " << (p.bitwise_identical ? "true" : "false")
     << ", \"threaded_seconds\": " << p.threaded_seconds
     << ", \"color_rounds\": " << p.rounds << ", \"threaded_bitwise\": "
     << (p.threaded_bitwise ? "true" : "false") << "}";
  return os.str();
}

void print_op2_tiling(const Op2TilingProbe& p) {
  std::printf(
      "op2 tiling       eager %.6fs -> tiled %.6fs (%.2fx), %llu chains "
      "(max %llu loops) -> %llu tiles, %llu verbatim, traffic saved "
      "%.1f%%, bitwise %s\n",
      p.eager_seconds, p.tiled_seconds, p.speedup(),
      static_cast<unsigned long long>(p.chain.flushes),
      static_cast<unsigned long long>(p.chain.max_chain),
      static_cast<unsigned long long>(p.chain.tiles),
      static_cast<unsigned long long>(p.chain.verbatim),
      100.0 * p.chain.traffic_saved_fraction(),
      p.bitwise_identical ? "identical" : "DIVERGED");
  std::printf(
      "op2 tiling       team-of-2 %.6fs, %llu color rounds, threaded "
      "bitwise %s\n",
      p.threaded_seconds, static_cast<unsigned long long>(p.rounds),
      p.threaded_bitwise ? "identical" : "DIVERGED");
}

std::string probe_json(const std::string& name, const CacheProbe& p) {
  std::ostringstream os;
  os << "  {\"run\": \"" << name
     << "\", \"cold_plan_seconds\": " << p.cold_plan_seconds
     << ", \"warm_plan_seconds\": " << p.warm_plan_seconds
     << ", \"speedup\": " << p.speedup()
     << ", \"cold_stores\": " << p.cold_stores
     << ", \"warm_hits\": " << p.warm_hits
     << ", \"warm_misses\": " << p.warm_misses
     << ", \"warm_corrupt\": " << p.warm_corrupt << ", \"bitwise_identical\": "
     << (p.bitwise_identical ? "true" : "false") << "}";
  return os.str();
}

void print_probe(const std::string& name, const CacheProbe& p) {
  std::printf(
      "%-16s plan analysis cold %.6fs -> warm %.6fs (%.1fx), "
      "%llu stored, warm %llu hit / %llu miss / %llu corrupt, bitwise %s\n",
      name.c_str(), p.cold_plan_seconds, p.warm_plan_seconds, p.speedup(),
      static_cast<unsigned long long>(p.cold_stores),
      static_cast<unsigned long long>(p.warm_hits),
      static_cast<unsigned long long>(p.warm_misses),
      static_cast<unsigned long long>(p.warm_corrupt),
      p.bitwise_identical ? "identical" : "DIVERGED");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](std::string& dst) {
      if (i + 1 >= argc) std::exit(usage(argv[0]));
      dst = argv[++i];
    };
    std::string v;
    if (a == "--out") {
      next(args.out);
    } else if (a == "--check-trace") {
      next(args.check_trace);
    } else if (a == "--machine") {
      next(args.machine);
    } else if (a == "--airfoil-iters") {
      next(v);
      args.airfoil_iters = std::atoi(v.c_str());
    } else if (a == "--clover-steps") {
      next(v);
      args.clover_steps = std::atoi(v.c_str());
    } else if (a == "--check-plan-cache") {
      args.check_plan_cache = true;
    } else if (a == "--check-resilience") {
      args.check_resilience = true;
    } else if (a == "--check-serve") {
      args.check_serve = true;
    } else if (a == "--check-op2-tiling") {
      args.check_op2_tiling = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (!args.check_trace.empty()) {
    std::ifstream is(args.check_trace);
    if (!is) {
      std::fprintf(stderr, "bench_report: cannot open '%s'\n",
                   args.check_trace.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string err = apl::trace::validate_chrome_json(buf.str());
    if (!err.empty()) {
      std::fprintf(stderr, "bench_report: %s: %s\n", args.check_trace.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("%s: valid Chrome trace\n", args.check_trace.c_str());
    return 0;
  }

  if (args.check_plan_cache) {
    // CI gate: short runs, but the same invariants the tests assert —
    // zero warm misses and bitwise-identical output on both families.
    const CacheProbe air = probe_airfoil();
    const CacheProbe clv = probe_clover_lazy();
    print_probe("airfoil", air);
    print_probe("cloverleaf_lazy", clv);
    if (!air.ok() || !clv.ok()) {
      std::fprintf(stderr,
                   "bench_report: plan cache cold->warm check FAILED\n");
      return 1;
    }
    std::printf("plan cache cold->warm check passed\n");
    return 0;
  }

  if (args.check_resilience) {
    const ResilienceProbe res = probe_resilience();
    print_resilience(res);
    if (!res.ok()) {
      std::fprintf(stderr, "bench_report: resilience check FAILED\n");
      return 1;
    }
    std::printf("resilience retry+shrink check passed\n");
    return 0;
  }

  if (args.check_serve) {
    const ServeProbe srv = probe_serve();
    print_serve(srv);
    if (!srv.ok()) {
      std::fprintf(stderr, "bench_report: serve soak check FAILED\n");
      return 1;
    }
    std::printf("serve multi-tenant soak check passed\n");
    return 0;
  }

  if (args.check_op2_tiling) {
    const Op2TilingProbe tp = probe_op2_tiling();
    print_op2_tiling(tp);
    if (!tp.ok()) {
      std::fprintf(stderr,
                   "bench_report: op2 tiling eager-vs-tiled check FAILED\n");
      return 1;
    }
    std::printf("op2 sparse-tiling bitwise check passed\n");
    return 0;
  }

  const apl::perf::Machine machine = apl::perf::machine(args.machine);
  std::vector<std::string> runs;

  {  // Airfoil, op2 path, lazy + sparse-tiled: each iteration's loops
     // queue and flush through the fused-tile executor (DESIGN.md §15).
     // The mesh is sized so a fused chain's working set overflows the
     // tile cache budget and auto sizing produces several tiles per
     // chain. BENCH_pr8.json keeps the eager trajectory point this run
     // is measured against; --check-op2-tiling holds the bitwise gate.
     // Per-loop wall clock at these sizes swings ~2x with scheduler
     // noise, so the recorded profile is the best of three runs (the
     // same policy the plan-cache probe applies to its timings).
    airfoil::Airfoil::Options opts;
    opts.nx = 120;
    opts.ny = 60;
    const auto loop_seconds = [](const apl::Profile& p) {
      double s = 0.0;
      for (const auto& [name, st] : p.all()) s += st.seconds;
      return s;
    };
    std::unique_ptr<airfoil::Airfoil> best;
    for (int r = 0; r < 3; ++r) {
      auto app = std::make_unique<airfoil::Airfoil>(opts);
      app->ctx().set_lazy(true);
      app->run(args.airfoil_iters);
      app->ctx().flush();
      if (!best || loop_seconds(app->ctx().profile()) <
                       loop_seconds(best->ctx().profile())) {
        best = std::move(app);
      }
    }
    runs.push_back(run_json("airfoil", best->ctx().profile(), machine,
                            chain_extra(best->ctx().chain_stats())));
    std::fputs(best->ctx().profile().report().c_str(), stdout);
    std::fputs(
        apl::perf::roofline_table(best->ctx().profile(), machine).c_str(),
        stdout);
  }

  {  // CloverLeaf eager: the attribution baseline for the lazy run.
    cloverleaf::CloverOps app;
    app.run(args.clover_steps);
    runs.push_back(
        run_json("cloverleaf_eager", app.ctx().profile(), machine, ""));
  }

  {  // CloverLeaf lazy + tiled: same loops, chain/tile stats alongside.
    cloverleaf::Options opts;
    opts.lazy = true;
    cloverleaf::CloverOps app(opts);
    app.run(args.clover_steps);
    app.ctx().flush();
    runs.push_back(run_json("cloverleaf_lazy", app.ctx().profile(), machine,
                            chain_extra(app.ctx().chain_stats())));
    std::fputs(app.ctx().profile().report().c_str(), stdout);
  }

  // Plan-cache trajectory: cold vs warm plan-analysis seconds per family.
  const CacheProbe air_probe = probe_airfoil();
  const CacheProbe clv_probe = probe_clover_lazy();
  print_probe("airfoil", air_probe);
  print_probe("cloverleaf_lazy", clv_probe);

  // Resilience trajectory: recovery overhead and MTTR of a faulted run.
  const ResilienceProbe res_probe = probe_resilience();
  print_resilience(res_probe);

  // Service trajectory: multi-tenant throughput/latency + isolation cost.
  const ServeProbe srv_probe = probe_serve();
  print_serve(srv_probe);

  // Tiling trajectory: eager vs lazy-tiled Airfoil on the same mesh.
  const Op2TilingProbe tile_probe = probe_op2_tiling();
  print_op2_tiling(tile_probe);

  std::ostringstream os;
  os << "{\"bench\": \"pr10\", \"machine\": \"" << machine.name
     << "\",\n \"airfoil_iters\": " << args.airfoil_iters
     << ", \"clover_steps\": " << args.clover_steps << ",\n \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << runs[i] << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  os << "],\n \"plan_cache\": [\n"
     << probe_json("airfoil", air_probe) << ",\n"
     << probe_json("cloverleaf_lazy", clv_probe) << "\n],\n \"resilience\": [\n"
     << resilience_json(res_probe) << "\n],\n \"serve\": [\n"
     << serve_json(srv_probe) << "\n],\n \"op2_tiling\": [\n"
     << op2_tiling_json(tile_probe) << "\n]}\n";

  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write '%s'\n",
                 args.out.c_str());
    return 1;
  }
  out << os.str();
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
