// bench_report: the perf-trajectory emitter behind BENCH_*.json.
//
// Runs the two tier-1 proxy apps (Airfoil on op2, CloverLeaf on ops — the
// latter both eager and lazy-tiled), collects every loop's Profile record
// (seconds, GB/s, bytes by access class, halo bytes, color/tile counts)
// and the roofline join against a machine model, and writes one JSON
// document per run plus the combined report.
//
//   bench_report [--out FILE] [--airfoil-iters N] [--clover-steps N]
//                [--machine NAME]
//   bench_report --check-trace FILE     # validate a Chrome trace dump
//
// --check-trace reuses apl::trace::validate_chrome_json, so the ci.sh
// trace stage exercises exactly the schema the tests assert.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "airfoil/airfoil.hpp"
#include "apl/perf/machines.hpp"
#include "apl/perf/report.hpp"
#include "apl/profile.hpp"
#include "apl/trace.hpp"
#include "cloverleaf/cloverleaf_ops.hpp"
#include "ops/ops.hpp"

namespace {

struct Args {
  std::string out = "BENCH_pr5.json";
  std::string check_trace;
  std::string machine = "e5-2697v2";
  int airfoil_iters = 40;
  int clover_steps = 20;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out FILE] [--airfoil-iters N] "
               "[--clover-steps N] [--machine NAME]\n"
               "       %s --check-trace FILE\n",
               argv0, argv0);
  return 2;
}

/// One run's record: the full Profile dump, the roofline join, and any
/// chain/tile statistics. `extra` is preformatted JSON members ("" or
/// ", \"k\": v...").
std::string run_json(const std::string& name, const apl::Profile& prof,
                     const apl::perf::Machine& machine,
                     const std::string& extra) {
  std::ostringstream os;
  os << "  {\"run\": \"" << name << "\",\n   \"profile\": " << prof.to_json()
     << ",\n   \"roofline\": " << apl::perf::roofline_json(prof, machine)
     << extra << "}";
  return os.str();
}

std::string chain_extra(const ops::ChainStats& cs) {
  std::ostringstream os;
  os << ",\n   \"chain\": {\"flushes\": " << cs.flushes
     << ", \"loops\": " << cs.loops << ", \"tiles\": " << cs.tiles
     << ", \"max_chain\": " << cs.max_chain
     << ", \"eager_bytes\": " << cs.eager_bytes
     << ", \"tiled_bytes\": " << cs.tiled_bytes
     << ", \"traffic_saved_fraction\": " << cs.traffic_saved_fraction()
     << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](std::string& dst) {
      if (i + 1 >= argc) std::exit(usage(argv[0]));
      dst = argv[++i];
    };
    std::string v;
    if (a == "--out") {
      next(args.out);
    } else if (a == "--check-trace") {
      next(args.check_trace);
    } else if (a == "--machine") {
      next(args.machine);
    } else if (a == "--airfoil-iters") {
      next(v);
      args.airfoil_iters = std::atoi(v.c_str());
    } else if (a == "--clover-steps") {
      next(v);
      args.clover_steps = std::atoi(v.c_str());
    } else {
      return usage(argv[0]);
    }
  }

  if (!args.check_trace.empty()) {
    std::ifstream is(args.check_trace);
    if (!is) {
      std::fprintf(stderr, "bench_report: cannot open '%s'\n",
                   args.check_trace.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string err = apl::trace::validate_chrome_json(buf.str());
    if (!err.empty()) {
      std::fprintf(stderr, "bench_report: %s: %s\n", args.check_trace.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("%s: valid Chrome trace\n", args.check_trace.c_str());
    return 0;
  }

  const apl::perf::Machine machine = apl::perf::machine(args.machine);
  std::vector<std::string> runs;

  {  // Airfoil, op2 path: per-loop colors come from the threads plan.
    airfoil::Airfoil app;
    app.ctx().set_backend(apl::exec::Backend::kThreads);
    app.run(args.airfoil_iters);
    runs.push_back(run_json("airfoil", app.ctx().profile(), machine, ""));
    std::fputs(app.ctx().profile().report().c_str(), stdout);
    std::fputs(apl::perf::roofline_table(app.ctx().profile(), machine).c_str(),
               stdout);
  }

  {  // CloverLeaf eager: the attribution baseline for the lazy run.
    cloverleaf::CloverOps app;
    app.run(args.clover_steps);
    runs.push_back(
        run_json("cloverleaf_eager", app.ctx().profile(), machine, ""));
  }

  {  // CloverLeaf lazy + tiled: same loops, chain/tile stats alongside.
    cloverleaf::Options opts;
    opts.lazy = true;
    cloverleaf::CloverOps app(opts);
    app.run(args.clover_steps);
    app.ctx().flush();
    runs.push_back(run_json("cloverleaf_lazy", app.ctx().profile(), machine,
                            chain_extra(app.ctx().chain_stats())));
    std::fputs(app.ctx().profile().report().c_str(), stdout);
  }

  std::ostringstream os;
  os << "{\"bench\": \"pr5\", \"machine\": \"" << machine.name
     << "\",\n \"airfoil_iters\": " << args.airfoil_iters
     << ", \"clover_steps\": " << args.clover_steps << ",\n \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << runs[i] << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  os << "]}\n";

  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write '%s'\n",
                 args.out.c_str());
    return 1;
  }
  out << os.str();
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
