#!/usr/bin/env bash
# Tier-1 CI gate: warnings-as-errors build + the fast test tier.
#
#   tools/ci.sh [build-dir]
#
# Mirrors what the acceptance checks run, so a green local run means a
# green CI run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"

cmake -S "$repo" -B "$build" -DAPL_WERROR=ON
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" -L tier1 --output-on-failure -j "$(nproc)"
