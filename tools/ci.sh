#!/usr/bin/env bash
# Tier-1 CI gate: warnings-as-errors build + the fast test tier, and an
# optional sanitizer stage.
#
#   tools/ci.sh [build-dir]             # plain tier-1 gate
#   CI_SANITIZE=address tools/ci.sh     # additionally rebuild + retest
#   CI_SANITIZE=undefined tools/ci.sh   # under the given sanitizer
#
# Mirrors what the acceptance checks run, so a green local run means a
# green CI run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"

cmake -S "$repo" -B "$build" -DAPL_WERROR=ON
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" -L tier1 --output-on-failure -j "$(nproc)"

if [[ -n "${CI_SANITIZE:-}" ]]; then
  san_build="$build-$CI_SANITIZE"
  cmake -S "$repo" -B "$san_build" -DAPL_WERROR=ON \
        -DAPL_SANITIZE="$CI_SANITIZE"
  cmake --build "$san_build" -j "$(nproc)"
  ctest --test-dir "$san_build" -L tier1 --output-on-failure -j "$(nproc)"
fi
