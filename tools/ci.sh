#!/usr/bin/env bash
# Tier-1 CI gate: warnings-as-errors build + the fast test tier, and an
# optional sanitizer stage.
#
#   tools/ci.sh [build-dir]             # plain tier-1 gate
#   CI_SANITIZE=address tools/ci.sh     # additionally rebuild + retest
#   CI_SANITIZE=undefined tools/ci.sh   # under the given sanitizer
#
# Mirrors what the acceptance checks run, so a green local run means a
# green CI run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"

cmake -S "$repo" -B "$build" -DAPL_WERROR=ON
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" -L tier1 --output-on-failure -j "$(nproc)"

# Guarded execution stage: the full tier must stay green with every runtime
# contract check enabled, and the proxy apps must run clean end to end.
# cloverleaf_sim doubles as the bit-identity proof — it compares the
# (guarded) OPS run against the hand-coded reference bit-for-bit.
OPAL_VERIFY=all ctest --test-dir "$build" -L tier1 --output-on-failure \
  -j "$(nproc)"
OPAL_VERIFY=all "$build/examples/airfoil_sim" 10 > /dev/null
OPAL_VERIFY=all "$build/examples/cloverleaf_sim" 10 \
  | grep -q "identical: yes (bitwise)"

# Testkit stage: a bounded fixed-seed differential sweep across the whole
# execution matrix (backends x lazy x distributed x checkpoint-restart).
# Fixed seeds keep it deterministic and well under a minute; the long
# randomized sweeps run via tools/fuzz.sh / ctest -L tier2.
"$build/src/testkit/opal_fuzz" --iterations 100 --seed 20260806 --quiet

# Tracing stage: a tier-1 app under OPAL_TRACE must emit schema-valid
# Chrome trace_event JSON — bench_report --check-trace runs the same
# validator the tests assert against — and the tier itself must stay green
# with the recorder buffering every span.
trace_out="$build/airfoil.trace.json"
OPAL_TRACE="$trace_out" "$build/examples/airfoil_sim" 5 > /dev/null
"$build/tools/bench_report" --check-trace "$trace_out"
OPAL_TRACE="$build/tier1.trace.json" ctest --test-dir "$build" -L tier1 \
  --output-on-failure -j "$(nproc)"

# Plan-cache stage: cold->warm differential on Airfoil and the CloverLeaf
# lazy chain. The warm run must load every plan from the cache (zero
# misses, zero corrupt entries), spend less time in plan analysis, and
# match the cold output bitwise — the whole point of persisting Plan IR.
"$build/tools/bench_report" --check-plan-cache

# Resilience stage: the retry + shrink ladder end to end. The kill-sweep
# fault matrix (every rank killed across the exchange ordinals of Airfoil
# and a lazy CloverLeaf chain, bitwise gate against a failure-free run at
# the surviving rank count) runs as the ShrinkRecover tier-1 tests; the
# bench_report gate replays one faulted run and checks the ledger columns.
"$build/tests/test_resilience" --gtest_filter='ShrinkRecoverTest.*' \
  --gtest_brief=1
"$build/tools/bench_report" --check-resilience

# Serve stage: the multi-tenant chaos soak. The opal_serve example runs a
# tenant mix (all three proxy apps) with a crash, a hang and a rank death
# injected into SOME tenants while the rest must finish with solo-identical
# digests; bench_report --check-serve gates the same invariants and prints
# the throughput / latency / isolation-overhead columns.
"$build/examples/opal_serve" 2 3 > /dev/null
"$build/tools/bench_report" --check-serve

# op2-tiling stage: the same Airfoil mesh eager and lazy-tiled through
# the sparse-tiling inspector/executor (DESIGN.md §15). The gate demands
# every chain fused (zero verbatim fallbacks), a projected traffic
# saving, and bitwise-identical solutions — order-preserving tiling must
# be invisible to the bits. The probe also reruns the schedules through
# the threaded color-round executor on a 2-member team and demands real
# rounds plus bitwise agreement there too.
"$build/tools/bench_report" --check-op2-tiling

# Perf-trajectory stage: regenerate the checked-in per-loop benchmark
# record (Airfoil lazy-tiled + CloverLeaf eager/lazy, roofline join and
# fused-chain columns included, plus the plan-analysis cold/warm,
# recovery-overhead/MTTR, multi-tenant service and eager-vs-tiled
# columns). BENCH_pr8.json stays checked in as the eager trajectory
# point the tiled fractions are measured against.
(cd "$repo" && "$build/tools/bench_report" --out BENCH_pr10.json > /dev/null)

if [[ -n "${CI_SANITIZE:-}" ]]; then
  san_build="$build-$CI_SANITIZE"
  cmake -S "$repo" -B "$san_build" -DAPL_WERROR=ON \
        -DAPL_SANITIZE="$CI_SANITIZE"
  cmake --build "$san_build" -j "$(nproc)"
  ctest --test-dir "$san_build" -L tier1 --output-on-failure -j "$(nproc)"
  # The kill sweep must stay clean under the sanitizer too (the ISSUE's
  # APL_SANITIZE=thread configuration when CI_SANITIZE=thread).
  "$san_build/tests/test_resilience" --gtest_filter='ShrinkRecoverTest.*' \
    --gtest_brief=1
  # And so must the serve soak: watchdog vs worker vs submitter is exactly
  # the kind of race ThreadSanitizer exists to catch.
  "$san_build/examples/opal_serve" 2 3 > /dev/null
  # The op2 tiling gate reruns under the sanitizer too (the ISSUE's
  # APL_SANITIZE=thread configuration when CI_SANITIZE=thread): the fused
  # executor — now including the threaded color-round path — and its
  # cancel checks must be clean, not just bitwise.
  "$san_build/tools/bench_report" --check-op2-tiling
  # Negative control, thread sanitizer only: the planted color-merge
  # mutation puts two conflicting tiles in one round. Run the merged
  # rounds for real on a 4-member team — TSan MUST report the race (the
  # binary exits nonzero), or the sanitizer net has a hole in it.
  if [[ "$CI_SANITIZE" == "thread" ]]; then
    if APL_EXPECT_TSAN=1 TSAN_OPTIONS="${TSAN_OPTIONS:-} exitcode=66" \
        "$san_build/tests/test_mutation_op2_color_merge" \
        --gtest_filter='MutationOp2ColorMerge.TsanCatchesMergedRounds' \
        > /dev/null 2>&1; then
      echo "ci: TSan failed to catch the merged-round race" >&2
      exit 1
    fi
  fi
fi
