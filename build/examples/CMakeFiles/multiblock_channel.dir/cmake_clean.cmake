file(REMOVE_RECURSE
  "CMakeFiles/multiblock_channel.dir/multiblock_channel.cpp.o"
  "CMakeFiles/multiblock_channel.dir/multiblock_channel.cpp.o.d"
  "multiblock_channel"
  "multiblock_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiblock_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
