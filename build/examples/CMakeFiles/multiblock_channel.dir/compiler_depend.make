# Empty compiler generated dependencies file for multiblock_channel.
# This may be replaced when dependencies are built.
