file(REMOVE_RECURSE
  "CMakeFiles/cloverleaf_sim.dir/cloverleaf_sim.cpp.o"
  "CMakeFiles/cloverleaf_sim.dir/cloverleaf_sim.cpp.o.d"
  "cloverleaf_sim"
  "cloverleaf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloverleaf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
