# Empty dependencies file for cloverleaf_sim.
# This may be replaced when dependencies are built.
