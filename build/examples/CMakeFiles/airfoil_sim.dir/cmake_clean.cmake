file(REMOVE_RECURSE
  "CMakeFiles/airfoil_sim.dir/airfoil_sim.cpp.o"
  "CMakeFiles/airfoil_sim.dir/airfoil_sim.cpp.o.d"
  "airfoil_sim"
  "airfoil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airfoil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
