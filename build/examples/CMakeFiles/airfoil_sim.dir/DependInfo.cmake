
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/airfoil_sim.cpp" "examples/CMakeFiles/airfoil_sim.dir/airfoil_sim.cpp.o" "gcc" "examples/CMakeFiles/airfoil_sim.dir/airfoil_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/airfoil/CMakeFiles/opal_airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/opal_op2.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/opal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/opal_io.dir/DependInfo.cmake"
  "/root/repo/build/src/simdev/CMakeFiles/opal_simdev.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/opal_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/opal_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
