# Empty dependencies file for airfoil_sim.
# This may be replaced when dependencies are built.
