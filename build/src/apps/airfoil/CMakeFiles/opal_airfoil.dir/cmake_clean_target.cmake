file(REMOVE_RECURSE
  "libopal_airfoil.a"
)
