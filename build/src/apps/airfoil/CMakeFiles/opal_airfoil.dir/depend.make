# Empty dependencies file for opal_airfoil.
# This may be replaced when dependencies are built.
