file(REMOVE_RECURSE
  "CMakeFiles/opal_airfoil.dir/airfoil.cpp.o"
  "CMakeFiles/opal_airfoil.dir/airfoil.cpp.o.d"
  "CMakeFiles/opal_airfoil.dir/mesh.cpp.o"
  "CMakeFiles/opal_airfoil.dir/mesh.cpp.o.d"
  "libopal_airfoil.a"
  "libopal_airfoil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_airfoil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
