# CMake generated Testfile for 
# Source directory: /root/repo/src/apps/airfoil
# Build directory: /root/repo/build/src/apps/airfoil
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
