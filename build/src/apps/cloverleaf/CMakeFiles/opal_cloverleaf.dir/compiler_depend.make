# Empty compiler generated dependencies file for opal_cloverleaf.
# This may be replaced when dependencies are built.
