file(REMOVE_RECURSE
  "libopal_cloverleaf.a"
)
