file(REMOVE_RECURSE
  "CMakeFiles/opal_cloverleaf.dir/cloverleaf_ops.cpp.o"
  "CMakeFiles/opal_cloverleaf.dir/cloverleaf_ops.cpp.o.d"
  "CMakeFiles/opal_cloverleaf.dir/cloverleaf_ref.cpp.o"
  "CMakeFiles/opal_cloverleaf.dir/cloverleaf_ref.cpp.o.d"
  "libopal_cloverleaf.a"
  "libopal_cloverleaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_cloverleaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
