# Empty dependencies file for opal_minihydra.
# This may be replaced when dependencies are built.
