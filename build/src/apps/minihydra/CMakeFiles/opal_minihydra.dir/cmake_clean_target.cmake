file(REMOVE_RECURSE
  "libopal_minihydra.a"
)
