file(REMOVE_RECURSE
  "CMakeFiles/opal_minihydra.dir/minihydra.cpp.o"
  "CMakeFiles/opal_minihydra.dir/minihydra.cpp.o.d"
  "libopal_minihydra.a"
  "libopal_minihydra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_minihydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
