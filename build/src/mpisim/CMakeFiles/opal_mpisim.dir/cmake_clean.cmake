file(REMOVE_RECURSE
  "CMakeFiles/opal_mpisim.dir/comm.cpp.o"
  "CMakeFiles/opal_mpisim.dir/comm.cpp.o.d"
  "libopal_mpisim.a"
  "libopal_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
