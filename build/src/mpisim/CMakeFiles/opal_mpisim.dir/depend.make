# Empty dependencies file for opal_mpisim.
# This may be replaced when dependencies are built.
