file(REMOVE_RECURSE
  "libopal_mpisim.a"
)
