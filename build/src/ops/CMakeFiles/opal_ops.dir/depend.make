# Empty dependencies file for opal_ops.
# This may be replaced when dependencies are built.
