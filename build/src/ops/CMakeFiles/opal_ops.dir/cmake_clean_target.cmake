file(REMOVE_RECURSE
  "libopal_ops.a"
)
