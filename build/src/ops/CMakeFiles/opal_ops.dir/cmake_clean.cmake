file(REMOVE_RECURSE
  "CMakeFiles/opal_ops.dir/core.cpp.o"
  "CMakeFiles/opal_ops.dir/core.cpp.o.d"
  "CMakeFiles/opal_ops.dir/dist.cpp.o"
  "CMakeFiles/opal_ops.dir/dist.cpp.o.d"
  "CMakeFiles/opal_ops.dir/halo.cpp.o"
  "CMakeFiles/opal_ops.dir/halo.cpp.o.d"
  "CMakeFiles/opal_ops.dir/par_loop.cpp.o"
  "CMakeFiles/opal_ops.dir/par_loop.cpp.o.d"
  "libopal_ops.a"
  "libopal_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
