
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/core.cpp" "src/ops/CMakeFiles/opal_ops.dir/core.cpp.o" "gcc" "src/ops/CMakeFiles/opal_ops.dir/core.cpp.o.d"
  "/root/repo/src/ops/dist.cpp" "src/ops/CMakeFiles/opal_ops.dir/dist.cpp.o" "gcc" "src/ops/CMakeFiles/opal_ops.dir/dist.cpp.o.d"
  "/root/repo/src/ops/halo.cpp" "src/ops/CMakeFiles/opal_ops.dir/halo.cpp.o" "gcc" "src/ops/CMakeFiles/opal_ops.dir/halo.cpp.o.d"
  "/root/repo/src/ops/par_loop.cpp" "src/ops/CMakeFiles/opal_ops.dir/par_loop.cpp.o" "gcc" "src/ops/CMakeFiles/opal_ops.dir/par_loop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/opal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/opal_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/opal_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
