# Empty compiler generated dependencies file for opal_perf.
# This may be replaced when dependencies are built.
