file(REMOVE_RECURSE
  "libopal_perf.a"
)
