file(REMOVE_RECURSE
  "CMakeFiles/opal_perf.dir/machines.cpp.o"
  "CMakeFiles/opal_perf.dir/machines.cpp.o.d"
  "CMakeFiles/opal_perf.dir/model.cpp.o"
  "CMakeFiles/opal_perf.dir/model.cpp.o.d"
  "libopal_perf.a"
  "libopal_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
