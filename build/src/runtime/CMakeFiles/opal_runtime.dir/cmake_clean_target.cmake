file(REMOVE_RECURSE
  "libopal_runtime.a"
)
