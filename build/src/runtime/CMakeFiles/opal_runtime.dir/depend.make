# Empty dependencies file for opal_runtime.
# This may be replaced when dependencies are built.
