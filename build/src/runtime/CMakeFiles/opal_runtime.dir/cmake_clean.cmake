file(REMOVE_RECURSE
  "CMakeFiles/opal_runtime.dir/profile.cpp.o"
  "CMakeFiles/opal_runtime.dir/profile.cpp.o.d"
  "CMakeFiles/opal_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/opal_runtime.dir/thread_pool.cpp.o.d"
  "libopal_runtime.a"
  "libopal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
