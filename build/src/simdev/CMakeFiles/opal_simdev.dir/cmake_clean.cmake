file(REMOVE_RECURSE
  "CMakeFiles/opal_simdev.dir/device.cpp.o"
  "CMakeFiles/opal_simdev.dir/device.cpp.o.d"
  "libopal_simdev.a"
  "libopal_simdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_simdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
