file(REMOVE_RECURSE
  "libopal_simdev.a"
)
