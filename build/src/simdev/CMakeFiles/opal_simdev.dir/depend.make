# Empty dependencies file for opal_simdev.
# This may be replaced when dependencies are built.
