file(REMOVE_RECURSE
  "libopal_io.a"
)
