file(REMOVE_RECURSE
  "CMakeFiles/opal_io.dir/h5lite.cpp.o"
  "CMakeFiles/opal_io.dir/h5lite.cpp.o.d"
  "libopal_io.a"
  "libopal_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
