# Empty compiler generated dependencies file for opal_io.
# This may be replaced when dependencies are built.
