file(REMOVE_RECURSE
  "CMakeFiles/opal_op2.dir/checkpoint.cpp.o"
  "CMakeFiles/opal_op2.dir/checkpoint.cpp.o.d"
  "CMakeFiles/opal_op2.dir/context.cpp.o"
  "CMakeFiles/opal_op2.dir/context.cpp.o.d"
  "CMakeFiles/opal_op2.dir/dist.cpp.o"
  "CMakeFiles/opal_op2.dir/dist.cpp.o.d"
  "CMakeFiles/opal_op2.dir/io.cpp.o"
  "CMakeFiles/opal_op2.dir/io.cpp.o.d"
  "CMakeFiles/opal_op2.dir/plan.cpp.o"
  "CMakeFiles/opal_op2.dir/plan.cpp.o.d"
  "CMakeFiles/opal_op2.dir/traffic.cpp.o"
  "CMakeFiles/opal_op2.dir/traffic.cpp.o.d"
  "CMakeFiles/opal_op2.dir/transform.cpp.o"
  "CMakeFiles/opal_op2.dir/transform.cpp.o.d"
  "libopal_op2.a"
  "libopal_op2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
