file(REMOVE_RECURSE
  "libopal_op2.a"
)
