
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2/checkpoint.cpp" "src/op2/CMakeFiles/opal_op2.dir/checkpoint.cpp.o" "gcc" "src/op2/CMakeFiles/opal_op2.dir/checkpoint.cpp.o.d"
  "/root/repo/src/op2/context.cpp" "src/op2/CMakeFiles/opal_op2.dir/context.cpp.o" "gcc" "src/op2/CMakeFiles/opal_op2.dir/context.cpp.o.d"
  "/root/repo/src/op2/dist.cpp" "src/op2/CMakeFiles/opal_op2.dir/dist.cpp.o" "gcc" "src/op2/CMakeFiles/opal_op2.dir/dist.cpp.o.d"
  "/root/repo/src/op2/io.cpp" "src/op2/CMakeFiles/opal_op2.dir/io.cpp.o" "gcc" "src/op2/CMakeFiles/opal_op2.dir/io.cpp.o.d"
  "/root/repo/src/op2/plan.cpp" "src/op2/CMakeFiles/opal_op2.dir/plan.cpp.o" "gcc" "src/op2/CMakeFiles/opal_op2.dir/plan.cpp.o.d"
  "/root/repo/src/op2/traffic.cpp" "src/op2/CMakeFiles/opal_op2.dir/traffic.cpp.o" "gcc" "src/op2/CMakeFiles/opal_op2.dir/traffic.cpp.o.d"
  "/root/repo/src/op2/transform.cpp" "src/op2/CMakeFiles/opal_op2.dir/transform.cpp.o" "gcc" "src/op2/CMakeFiles/opal_op2.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/opal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/opal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/opal_io.dir/DependInfo.cmake"
  "/root/repo/build/src/simdev/CMakeFiles/opal_simdev.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/opal_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
