# Empty dependencies file for opal_op2.
# This may be replaced when dependencies are built.
