# Empty compiler generated dependencies file for opal_graph.
# This may be replaced when dependencies are built.
