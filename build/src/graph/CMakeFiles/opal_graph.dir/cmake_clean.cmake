file(REMOVE_RECURSE
  "CMakeFiles/opal_graph.dir/coloring.cpp.o"
  "CMakeFiles/opal_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/opal_graph.dir/csr.cpp.o"
  "CMakeFiles/opal_graph.dir/csr.cpp.o.d"
  "CMakeFiles/opal_graph.dir/partition.cpp.o"
  "CMakeFiles/opal_graph.dir/partition.cpp.o.d"
  "CMakeFiles/opal_graph.dir/rcm.cpp.o"
  "CMakeFiles/opal_graph.dir/rcm.cpp.o.d"
  "libopal_graph.a"
  "libopal_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opal_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
