file(REMOVE_RECURSE
  "libopal_graph.a"
)
