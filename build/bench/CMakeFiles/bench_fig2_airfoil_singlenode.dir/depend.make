# Empty dependencies file for bench_fig2_airfoil_singlenode.
# This may be replaced when dependencies are built.
