file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cloverleaf_titan.dir/bench_fig6_cloverleaf_titan.cpp.o"
  "CMakeFiles/bench_fig6_cloverleaf_titan.dir/bench_fig6_cloverleaf_titan.cpp.o.d"
  "bench_fig6_cloverleaf_titan"
  "bench_fig6_cloverleaf_titan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cloverleaf_titan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
