
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_cloverleaf_titan.cpp" "bench/CMakeFiles/bench_fig6_cloverleaf_titan.dir/bench_fig6_cloverleaf_titan.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_cloverleaf_titan.dir/bench_fig6_cloverleaf_titan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/opal_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/cloverleaf/CMakeFiles/opal_cloverleaf.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/opal_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/opal_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/opal_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/opal_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
