# Empty dependencies file for bench_fig6_cloverleaf_titan.
# This may be replaced when dependencies are built.
