# Empty compiler generated dependencies file for bench_fig3_hydra_singlenode.
# This may be replaced when dependencies are built.
