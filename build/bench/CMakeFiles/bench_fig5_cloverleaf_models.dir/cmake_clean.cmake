file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cloverleaf_models.dir/bench_fig5_cloverleaf_models.cpp.o"
  "CMakeFiles/bench_fig5_cloverleaf_models.dir/bench_fig5_cloverleaf_models.cpp.o.d"
  "bench_fig5_cloverleaf_models"
  "bench_fig5_cloverleaf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cloverleaf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
