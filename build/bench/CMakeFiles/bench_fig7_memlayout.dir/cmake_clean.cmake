file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_memlayout.dir/bench_fig7_memlayout.cpp.o"
  "CMakeFiles/bench_fig7_memlayout.dir/bench_fig7_memlayout.cpp.o.d"
  "bench_fig7_memlayout"
  "bench_fig7_memlayout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_memlayout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
