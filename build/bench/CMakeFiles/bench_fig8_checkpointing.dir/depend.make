# Empty dependencies file for bench_fig8_checkpointing.
# This may be replaced when dependencies are built.
