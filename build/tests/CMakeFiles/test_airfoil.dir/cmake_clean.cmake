file(REMOVE_RECURSE
  "CMakeFiles/test_airfoil.dir/apps/test_airfoil.cpp.o"
  "CMakeFiles/test_airfoil.dir/apps/test_airfoil.cpp.o.d"
  "test_airfoil"
  "test_airfoil.pdb"
  "test_airfoil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airfoil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
