# Empty compiler generated dependencies file for test_cloverleaf.
# This may be replaced when dependencies are built.
