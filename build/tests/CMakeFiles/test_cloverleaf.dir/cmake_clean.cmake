file(REMOVE_RECURSE
  "CMakeFiles/test_cloverleaf.dir/apps/test_cloverleaf.cpp.o"
  "CMakeFiles/test_cloverleaf.dir/apps/test_cloverleaf.cpp.o.d"
  "test_cloverleaf"
  "test_cloverleaf.pdb"
  "test_cloverleaf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloverleaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
