
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_coloring.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_coloring.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_coloring.cpp.o.d"
  "/root/repo/tests/graph/test_csr.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_csr.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_csr.cpp.o.d"
  "/root/repo/tests/graph/test_partition.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_partition.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_partition.cpp.o.d"
  "/root/repo/tests/graph/test_rcm.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_rcm.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/opal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/opal_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
