# Empty dependencies file for test_minihydra.
# This may be replaced when dependencies are built.
