file(REMOVE_RECURSE
  "CMakeFiles/test_minihydra.dir/apps/test_minihydra.cpp.o"
  "CMakeFiles/test_minihydra.dir/apps/test_minihydra.cpp.o.d"
  "test_minihydra"
  "test_minihydra.pdb"
  "test_minihydra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minihydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
