file(REMOVE_RECURSE
  "CMakeFiles/test_ops.dir/ops/test_ops_3d.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_ops_3d.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_ops_core.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_ops_core.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_ops_dist.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_ops_dist.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_ops_halo.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_ops_halo.cpp.o.d"
  "CMakeFiles/test_ops.dir/ops/test_ops_par_loop.cpp.o"
  "CMakeFiles/test_ops.dir/ops/test_ops_par_loop.cpp.o.d"
  "test_ops"
  "test_ops.pdb"
  "test_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
