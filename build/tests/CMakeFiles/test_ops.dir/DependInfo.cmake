
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ops/test_ops_3d.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_ops_3d.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_ops_3d.cpp.o.d"
  "/root/repo/tests/ops/test_ops_core.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_ops_core.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_ops_core.cpp.o.d"
  "/root/repo/tests/ops/test_ops_dist.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_ops_dist.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_ops_dist.cpp.o.d"
  "/root/repo/tests/ops/test_ops_halo.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_ops_halo.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_ops_halo.cpp.o.d"
  "/root/repo/tests/ops/test_ops_par_loop.cpp" "tests/CMakeFiles/test_ops.dir/ops/test_ops_par_loop.cpp.o" "gcc" "tests/CMakeFiles/test_ops.dir/ops/test_ops_par_loop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/opal_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/opal_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/opal_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/opal_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
