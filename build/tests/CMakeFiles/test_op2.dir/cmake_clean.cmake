file(REMOVE_RECURSE
  "CMakeFiles/test_op2.dir/op2/test_checkpoint.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_dist.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_dist.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_mesh.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_mesh.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_par_loop.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_par_loop.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_plan.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_plan.cpp.o.d"
  "CMakeFiles/test_op2.dir/op2/test_transform.cpp.o"
  "CMakeFiles/test_op2.dir/op2/test_transform.cpp.o.d"
  "test_op2"
  "test_op2.pdb"
  "test_op2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
