file(REMOVE_RECURSE
  "CMakeFiles/test_simdev.dir/simdev/test_device.cpp.o"
  "CMakeFiles/test_simdev.dir/simdev/test_device.cpp.o.d"
  "test_simdev"
  "test_simdev.pdb"
  "test_simdev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
