file(REMOVE_RECURSE
  "CMakeFiles/test_op2_io.dir/op2/test_io.cpp.o"
  "CMakeFiles/test_op2_io.dir/op2/test_io.cpp.o.d"
  "test_op2_io"
  "test_op2_io.pdb"
  "test_op2_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op2_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
