# Empty compiler generated dependencies file for test_op2_io.
# This may be replaced when dependencies are built.
