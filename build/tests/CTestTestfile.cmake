# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_simdev[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_op2[1]_include.cmake")
include("/root/repo/build/tests/test_airfoil[1]_include.cmake")
include("/root/repo/build/tests/test_op2_io[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_cloverleaf[1]_include.cmake")
include("/root/repo/build/tests/test_minihydra[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
