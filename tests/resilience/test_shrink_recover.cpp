// Shrink-and-continue rank recovery (PR 7 tentpole). The fault matrix:
// every rank of a distributed run is killed at every exchange ordinal, the
// survivors shrink the communicator, repartition, restore from the last
// checkpoint, and the continuation must be BITWISE identical to a
// failure-free run at the surviving rank count restored from the same
// checkpoint — for OP2 (Airfoil) and a lazy-chained OPS CloverLeaf.
// Transient message faults (drop/duplicate/corrupt) must instead be
// absorbed by bounded retry with zero result change, and an exhausted
// degradation ladder must surface as the named LadderExhausted error —
// never a hang, never a raw crash.
#include <cmath>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "airfoil/airfoil.hpp"
#include "apl/fault.hpp"
#include "apl/io/ckpt.hpp"
#include "apl/resilience.hpp"
#include "cloverleaf/cloverleaf_ops.hpp"
#include "op2/dist.hpp"
#include "ops/dist.hpp"

namespace {

using apl::fault::Config;
using apl::fault::Injector;
using apl::io::CheckpointStore;
using apl::resilience::LadderExhausted;

std::string temp_base(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class ShrinkRecoverTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Injector::global().disarm();
    apl::resilience::reset_policy();
  }
};

// ---- OP2: Airfoil fault matrix --------------------------------------------

airfoil::Airfoil::Options airfoil_opts() {
  airfoil::Airfoil::Options o;
  o.nx = 8;
  o.ny = 4;
  return o;
}

TEST_F(ShrinkRecoverTest, AirfoilKillMatrixShrinksBitIdentical) {
  const std::string base = temp_base("shrink_airfoil_matrix");
  const int nranks = 4;
  const int total = 6;

  // Dry run counts the exchanges of a fault-free run (the injector's
  // exchange ordinal ticks whenever it is armed, even with no trigger).
  std::int64_t num_exchanges = 0;
  {
    airfoil::Airfoil app(airfoil_opts());
    app.enable_distributed(nranks, apl::graph::PartitionMethod::kBlock);
    Injector::global().arm(Config{});
    for (int it = 0; it < total; ++it) app.iteration();
    num_exchanges = Injector::global().exchanges_seen();
    Injector::global().disarm();
  }
  ASSERT_GT(num_exchanges, 2);

  // One faulted run per (rank, exchange) cell. The driver checkpoints at
  // steps 0 and 3 while unfailed, so a kill restores from whichever save
  // was last — both mid-flight restore paths get exercised.
  std::map<int, std::vector<double>> q_ref;  // by restored step
  int cells_failed = 0;
  for (int victim = 0; victim < nranks; ++victim) {
    for (std::int64_t m = 0; m < num_exchanges; ++m) {
      CheckpointStore(base).remove_files();
      airfoil::Airfoil app(airfoil_opts());
      app.enable_distributed(nranks, apl::graph::PartitionMethod::kBlock);
      op2::Distributed& dist = *app.distributed();
      CheckpointStore store(base);

      Config cfg;
      cfg.fail_rank = victim;
      cfg.fail_at_exchange = m;
      Injector::global().arm(cfg);
      int it = 0;
      int restored_step = -1;
      while (it < total) {
        if (restored_step < 0 && (it == 0 || it == 3)) {
          dist.checkpoint(store, it);
        }
        try {
          app.iteration();
          ++it;
        } catch (const apl::fault::RankFailure& e) {
          ASSERT_EQ(e.rank(), victim) << "victim " << victim << " @" << m;
          ASSERT_LT(restored_step, 0) << "second failure in one cell";
          restored_step = static_cast<int>(dist.recover_auto(store));
          it = restored_step;
        }
      }
      Injector::global().disarm();
      if (restored_step < 0) continue;  // ordinal past this run's exchanges
      ++cells_failed;
      ASSERT_EQ(dist.num_ranks(), nranks - 1);
      ASSERT_EQ(dist.shrinks_done(), 1);
      EXPECT_EQ(dist.comm().traffic().shrinks(), 1u);
      EXPECT_GE(dist.comm().traffic().mttr(), 0.0);

      // Reference: a failure-free run at the surviving rank count restored
      // from the same checkpoint (cached — the checkpoint contents only
      // depend on the restored step, not on the kill site).
      if (q_ref.find(restored_step) == q_ref.end()) {
        airfoil::Airfoil ref(airfoil_opts());
        ref.enable_distributed(nranks - 1,
                               apl::graph::PartitionMethod::kBlock);
        const auto s0 =
            static_cast<int>(ref.distributed()->recover(store));
        ASSERT_EQ(s0, restored_step);
        for (int i = s0; i < total; ++i) ref.iteration();
        q_ref[restored_step] = ref.solution();
      }
      ASSERT_EQ(app.solution(), q_ref[restored_step])
          << "victim " << victim << " killed at exchange " << m
          << " (restored from step " << restored_step << ")";
    }
  }
  // Every victim rank must actually have died somewhere in the sweep.
  EXPECT_GE(cells_failed, nranks);
  CheckpointStore(base).remove_files();
}

// ---- OPS: lazy-chained CloverLeaf fault matrix ----------------------------

cloverleaf::Options clover_opts() {
  cloverleaf::Options o;
  o.nx = 12;
  o.ny = 12;
  o.lazy = true;  // rank contexts run the PR 1 chaining engine
  return o;
}

TEST_F(ShrinkRecoverTest, CloverLeafLazyKillMatrixShrinksBitIdentical) {
  const std::string base = temp_base("shrink_clover_matrix");
  const int nranks = 4;
  const int total = 4;

  std::int64_t num_exchanges = 0;
  {
    cloverleaf::CloverOps app(clover_opts());
    app.enable_distributed(nranks);
    Injector::global().arm(Config{});
    app.run(total);
    num_exchanges = Injector::global().exchanges_seen();
    Injector::global().disarm();
  }
  ASSERT_GT(num_exchanges, 2);

  // The full matrix would be slow at CloverLeaf's exchange density; kill
  // every rank at a stride of ordinals covering begin, middle and end.
  const std::int64_t stride = std::max<std::int64_t>(1, num_exchanges / 7);
  std::map<int, std::vector<double>> d_ref;
  int cells_failed = 0;
  for (int victim = 0; victim < nranks; ++victim) {
    for (std::int64_t m = 0; m < num_exchanges; m += stride) {
      CheckpointStore(base).remove_files();
      cloverleaf::CloverOps app(clover_opts());
      app.enable_distributed(nranks);
      ops::Distributed& dist = *app.distributed();
      CheckpointStore store(base);

      Config cfg;
      cfg.fail_rank = victim;
      cfg.fail_at_exchange = m;
      Injector::global().arm(cfg);
      int it = 0;
      int restored_step = -1;
      while (it < total) {
        if (restored_step < 0 && (it == 0 || it == 2)) {
          dist.checkpoint(store, it);
        }
        try {
          app.step();
          ++it;
        } catch (const apl::fault::RankFailure& e) {
          ASSERT_EQ(e.rank(), victim) << "victim " << victim << " @" << m;
          ASSERT_LT(restored_step, 0) << "second failure in one cell";
          restored_step = static_cast<int>(dist.recover_auto(store));
          it = restored_step;
          app.set_steps_taken(it);  // xy/yx advection parity
        }
      }
      Injector::global().disarm();
      if (restored_step < 0) continue;
      ++cells_failed;
      ASSERT_EQ(dist.num_ranks(), nranks - 1);
      ASSERT_EQ(dist.shrinks_done(), 1);

      if (d_ref.find(restored_step) == d_ref.end()) {
        cloverleaf::CloverOps ref(clover_opts());
        ref.enable_distributed(nranks - 1);
        const auto s0 =
            static_cast<int>(ref.distributed()->recover(store));
        ASSERT_EQ(s0, restored_step);
        ref.set_steps_taken(s0);
        for (int i = s0; i < total; ++i) ref.step();
        d_ref[restored_step] = ref.density();
      }
      ASSERT_EQ(app.density(), d_ref[restored_step])
          << "victim " << victim << " killed at exchange " << m
          << " (restored from step " << restored_step << ")";
    }
  }
  EXPECT_GE(cells_failed, nranks);
  CheckpointStore(base).remove_files();
}

// ---- transient faults: absorbed by bounded retry --------------------------

TEST_F(ShrinkRecoverTest, TransientFaultsRetryWithZeroResultChange) {
  const int nranks = 3;
  const int total = 5;

  airfoil::Airfoil ref(airfoil_opts());
  ref.enable_distributed(nranks, apl::graph::PartitionMethod::kBlock);
  for (int i = 0; i < total; ++i) ref.iteration();
  const auto q_ref = ref.solution();

  for (const char* trigger : {"drop_msg", "dup_msg", "corrupt_msg"}) {
    airfoil::Airfoil app(airfoil_opts());
    app.enable_distributed(nranks, apl::graph::PartitionMethod::kBlock);
    Config cfg = apl::fault::parse_config(std::string(trigger) + "=40");
    Injector::global().arm(cfg);
    for (int i = 0; i < total; ++i) app.iteration();
    Injector::global().disarm();
    const auto& t = app.distributed()->comm().traffic();
    EXPECT_GE(t.retries(), 1u) << trigger;
    EXPECT_GT(t.retry_backoff_seconds(), 0.0) << trigger;
    EXPECT_EQ(t.shrinks(), 0u) << trigger;
    EXPECT_EQ(app.solution(), q_ref) << trigger;
  }
}

TEST_F(ShrinkRecoverTest, OpsTransientFaultsRetryWithZeroResultChange) {
  const int nranks = 4;
  const int total = 3;

  cloverleaf::CloverOps ref(clover_opts());
  ref.enable_distributed(nranks);
  ref.run(total);
  const auto d_ref = ref.density();

  for (const char* trigger : {"drop_msg", "dup_msg", "corrupt_msg"}) {
    cloverleaf::CloverOps app(clover_opts());
    app.enable_distributed(nranks);
    Config cfg = apl::fault::parse_config(std::string(trigger) + "=25");
    Injector::global().arm(cfg);
    app.run(total);
    Injector::global().disarm();
    const auto& t = app.distributed()->comm().traffic();
    EXPECT_GE(t.retries(), 1u) << trigger;
    EXPECT_EQ(app.density(), d_ref) << trigger;
  }
}

// ---- the degradation ladder, rung by rung ---------------------------------

TEST_F(ShrinkRecoverTest, RetryBudgetZeroEscalatesToLadderExhausted) {
  apl::resilience::Policy p;
  p.max_retries = 0;  // first transient fault exhausts the retry rung
  apl::resilience::set_policy(p);

  airfoil::Airfoil app(airfoil_opts());
  app.enable_distributed(3, apl::graph::PartitionMethod::kBlock);
  Config cfg;
  cfg.drop_msg = 10;
  Injector::global().arm(cfg);
  EXPECT_THROW(
      {
        for (int i = 0; i < 4; ++i) app.iteration();
      },
      LadderExhausted);
}

TEST_F(ShrinkRecoverTest, PolicyFailForbidsRecovery) {
  apl::resilience::Policy p;
  p.rank_failure = apl::resilience::OnRankFailure::kFail;
  apl::resilience::set_policy(p);

  const std::string base = temp_base("shrink_policy_fail");
  CheckpointStore(base).remove_files();
  airfoil::Airfoil app(airfoil_opts());
  app.enable_distributed(3, apl::graph::PartitionMethod::kBlock);
  op2::Distributed& dist = *app.distributed();
  CheckpointStore store(base);
  dist.checkpoint(store, 0);

  Config cfg;
  cfg.fail_rank = 1;
  cfg.fail_at_exchange = 2;
  Injector::global().arm(cfg);
  bool failed = false;
  try {
    for (int i = 0; i < 4; ++i) app.iteration();
  } catch (const apl::fault::RankFailure&) {
    failed = true;
    EXPECT_THROW(dist.recover_auto(store), LadderExhausted);
  }
  EXPECT_TRUE(failed);
  store.remove_files();
}

TEST_F(ShrinkRecoverTest, PolicyReviveTakesTheRollbackPath) {
  apl::resilience::Policy p;
  p.rank_failure = apl::resilience::OnRankFailure::kRevive;
  apl::resilience::set_policy(p);

  const std::string base = temp_base("shrink_policy_revive");
  CheckpointStore(base).remove_files();
  airfoil::Airfoil app(airfoil_opts());
  app.enable_distributed(3, apl::graph::PartitionMethod::kBlock);
  op2::Distributed& dist = *app.distributed();
  CheckpointStore store(base);
  const int total = 5;

  airfoil::Airfoil ref(airfoil_opts());
  ref.enable_distributed(3, apl::graph::PartitionMethod::kBlock);
  for (int i = 0; i < total; ++i) ref.iteration();

  Config cfg;
  cfg.fail_rank = 1;
  cfg.fail_at_exchange = 3;
  Injector::global().arm(cfg);
  int it = 0;
  while (it < total) {
    if (it == 0) dist.checkpoint(store, it);
    try {
      app.iteration();
      ++it;
    } catch (const apl::fault::RankFailure&) {
      it = static_cast<int>(dist.recover_auto(store));
    }
  }
  EXPECT_EQ(dist.num_ranks(), 3);    // revive keeps the communicator
  EXPECT_EQ(dist.shrinks_done(), 0);
  EXPECT_EQ(app.solution(), ref.solution());
  store.remove_files();
}

TEST_F(ShrinkRecoverTest, ShrinkBudgetSpentFallsBackToSingleRank) {
  apl::resilience::Policy p;
  p.max_shrinks = 0;  // jump straight to the last rung
  apl::resilience::set_policy(p);

  const std::string base = temp_base("shrink_fallback");
  CheckpointStore(base).remove_files();
  const int nranks = 3;
  const int total = 5;

  airfoil::Airfoil app(airfoil_opts());
  app.enable_distributed(nranks, apl::graph::PartitionMethod::kBlock);
  op2::Distributed& dist = *app.distributed();
  CheckpointStore store(base);

  Config cfg;
  cfg.fail_rank = 0;
  cfg.fail_at_exchange = 2;
  Injector::global().arm(cfg);
  int it = 0;
  int restored_step = -1;
  while (it < total) {
    if (restored_step < 0 && it == 0) dist.checkpoint(store, it);
    try {
      app.iteration();
      ++it;
    } catch (const apl::fault::RankFailure&) {
      restored_step = static_cast<int>(dist.recover_auto(store));
      it = restored_step;
    }
  }
  Injector::global().disarm();
  ASSERT_GE(restored_step, 0);
  EXPECT_EQ(dist.num_ranks(), 1);  // replicated single-rank execution

  // Still bitwise against a single-rank run restored from the checkpoint.
  airfoil::Airfoil ref(airfoil_opts());
  ref.enable_distributed(1, apl::graph::PartitionMethod::kBlock);
  const auto s0 = static_cast<int>(ref.distributed()->recover(store));
  for (int i = s0; i < total; ++i) ref.iteration();
  EXPECT_EQ(app.solution(), ref.solution());

  // The ladder is now truly exhausted: another death cannot shrink below
  // one rank and the fallback has been reached.
  Config again;
  again.fail_rank = 0;
  again.fail_at_exchange = 1;
  Injector::global().arm(again);
  bool failed = false;
  try {
    for (int i = 0; i < 3; ++i) app.iteration();
  } catch (const apl::fault::RankFailure&) {
    failed = true;
    EXPECT_THROW(dist.recover_auto(store), LadderExhausted);
  }
  EXPECT_TRUE(failed);
  store.remove_files();
}

// ---- satellite: named checkpoint-layout diagnostic ------------------------

TEST_F(ShrinkRecoverTest, MismatchedCheckpointLayoutNamesTheCulprit) {
  const std::string base = temp_base("shrink_layout_mismatch");
  CheckpointStore(base).remove_files();

  // A checkpoint written by a *larger mesh* than the app restoring it.
  {
    airfoil::Airfoil big(airfoil::Airfoil::Options{});  // default 60x30
    big.enable_distributed(2, apl::graph::PartitionMethod::kBlock);
    CheckpointStore store(base);
    big.distributed()->checkpoint(store, 0);
  }
  airfoil::Airfoil small(airfoil_opts());
  small.enable_distributed(2, apl::graph::PartitionMethod::kBlock);
  CheckpointStore store(base);
  try {
    small.distributed()->recover(store);
    FAIL() << "mismatched checkpoint layout was accepted";
  } catch (const apl::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checkpoint layout mismatch"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("expected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("found"), std::string::npos) << msg;
  }
  store.remove_files();
}

}  // namespace
