// End-to-end fault tolerance (ISSUE: crash-safe checkpointing + fault
// injection). The promoted form of examples/checkpoint_restart.cpp: real
// proxy apps run to loop N, are killed by the deterministic injector,
// restart from the slot files, and must land on bit-identical end states —
// for OP2 (Airfoil) and OPS (CloverLeaf). On top of that, byte-offset kill
// sweeps over live checkpoint writes and simulated-rank failure with
// collective rollback on both distributed layers.
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "airfoil/airfoil.hpp"
#include "apl/fault.hpp"
#include "apl/io/ckpt.hpp"
#include "cloverleaf/cloverleaf_ops.hpp"
#include "op2/checkpoint.hpp"
#include "ops/checkpoint.hpp"
#include "ops/dist.hpp"

namespace {

using apl::fault::Config;
using apl::fault::Injector;
using apl::io::CheckpointStore;

std::string temp_base(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class KillRestoreTest : public ::testing::Test {
 protected:
  void TearDown() override { Injector::global().disarm(); }
};

// ---- OP2: Airfoil ---------------------------------------------------------

airfoil::Airfoil::Options airfoil_opts(op2::index_t nx = 24,
                                       op2::index_t ny = 12) {
  airfoil::Airfoil::Options o;
  o.nx = nx;
  o.ny = ny;
  return o;
}

TEST_F(KillRestoreTest, AirfoilInjectorKillThenRestartIsBitIdentical) {
  const std::string base = temp_base("resil_airfoil");
  const int total = 12;

  airfoil::Airfoil ref(airfoil_opts());
  const double rms_ref = ref.run(total);
  const auto q_ref = ref.solution();

  // Run 1: checkpoint mid-flight, then die at an injected loop ordinal.
  {
    airfoil::Airfoil app(airfoil_opts());
    op2::Checkpointer ck(app.ctx(), base);
    app.run(6);
    ck.request_checkpoint();
    app.run(2);
    ASSERT_TRUE(ck.checkpoint_complete());

    Config cfg;
    cfg.kill_at_loop = 5;  // five loops after arming: mid-iteration 9
    Injector::global().arm(cfg);
    bool killed = false;
    try {
      app.run(total - 8);
    } catch (const apl::fault::Kill&) {
      killed = true;
    }
    Injector::global().disarm();
    ASSERT_TRUE(killed);
  }

  // Run 2: identical application code restarted from the slot files.
  {
    airfoil::Airfoil app(airfoil_opts());
    op2::Checkpointer ck = op2::Checkpointer::restore(app.ctx(), base);
    const double rms = app.run(total);
    EXPECT_FALSE(ck.replaying());
    EXPECT_EQ(rms, rms_ref);  // bit-identical, not just close
    EXPECT_EQ(app.solution(), q_ref);
    ck.store().remove_files();
  }
}

// The crash-safety property, end to end: for EVERY byte offset of a live
// checkpoint write, a kill at that offset must leave state from which the
// restarted Airfoil reproduces the uninterrupted run bit for bit.
TEST_F(KillRestoreTest, AirfoilCkptWriteKillSweepIsBitIdentical) {
  const std::string base = temp_base("resil_airfoil_sweep");
  const auto opts = airfoil_opts(6, 3);  // small mesh: the sweep is wide
  const int total = 10;
  op2::Checkpointer::Options co;
  co.speculative = false;  // prompt entry keeps the schedule simple

  airfoil::Airfoil ref(opts);
  const double rms_ref = ref.run(total);
  const auto q_ref = ref.solution();

  // One run writes generation 1 (kept) and generation 2 (killed mid-write).
  const auto run_to_second_save = [&](std::int64_t kill_offset) {
    airfoil::Airfoil app(opts);
    op2::Checkpointer ck(app.ctx(), base, co);
    app.run(3);
    ck.request_checkpoint();
    app.run(2);
    EXPECT_TRUE(ck.checkpoint_complete());
    if (kill_offset >= 0) {
      Config cfg;
      cfg.kill_at_ckpt_byte = kill_offset;
      Injector::global().arm(cfg);
    }
    ck.request_checkpoint();
    bool killed = false;
    try {
      app.run(3);
    } catch (const apl::fault::Kill&) {
      killed = true;
    }
    Injector::global().disarm();
    EXPECT_TRUE(ck.checkpoint_complete() || killed);
    return std::make_pair(killed, ck.store().last_write_bytes());
  };

  // Dry run learns the width of the second save.
  CheckpointStore(base).remove_files();
  const auto [dry_killed, total_bytes] = run_to_second_save(-1);
  ASSERT_FALSE(dry_killed);
  ASSERT_GT(total_bytes, 0u);
  CheckpointStore(base).remove_files();

  for (std::uint64_t k = 0; k < total_bytes; ++k) {
    const auto [killed, ignored] =
        run_to_second_save(static_cast<std::int64_t>(k));
    (void)ignored;
    ASSERT_TRUE(killed) << "kill offset " << k << " never fired";

    airfoil::Airfoil app(opts);
    op2::Checkpointer ck = op2::Checkpointer::restore(app.ctx(), base);
    const double rms = app.run(total);
    ASSERT_EQ(rms, rms_ref) << "kill offset " << k;
    ASSERT_EQ(app.solution(), q_ref) << "kill offset " << k;
    CheckpointStore(base).remove_files();
  }
}

// ---- OPS: CloverLeaf ------------------------------------------------------

cloverleaf::Options clover_opts() {
  cloverleaf::Options o;
  o.nx = 16;
  o.ny = 16;
  return o;
}

TEST_F(KillRestoreTest, CloverLeafInjectorKillThenRestartIsBitIdentical) {
  const std::string base = temp_base("resil_clover");
  const int total = 8;

  cloverleaf::CloverOps ref(clover_opts());
  ref.run(total);
  const auto d_ref = ref.density();
  const double dt_ref = ref.dt();

  ops::Checkpointer::Options co;
  co.speculative = false;  // enter at the next loop, not a period later
  {
    cloverleaf::CloverOps app(clover_opts());
    ops::Checkpointer ck(app.ctx(), base, co);
    app.run(4);
    ck.request_checkpoint();
    app.run(2);
    ASSERT_TRUE(ck.checkpoint_complete());

    Config cfg;
    cfg.kill_at_loop = 7;
    Injector::global().arm(cfg);
    bool killed = false;
    try {
      app.run(total - 6);
    } catch (const apl::fault::Kill&) {
      killed = true;
    }
    Injector::global().disarm();
    ASSERT_TRUE(killed);
  }

  {
    cloverleaf::CloverOps app(clover_opts());
    ops::Checkpointer ck = ops::Checkpointer::restore(app.ctx(), base, co);
    app.run(total);
    EXPECT_FALSE(ck.replaying());
    EXPECT_EQ(app.density(), d_ref);
    EXPECT_EQ(app.dt(), dt_ref);
    ck.store().remove_files();
  }
}

// A compact structured chain for the OPS byte-offset kill sweep (a full
// CloverLeaf checkpoint would make the per-byte sweep needlessly wide).
struct OpsMini {
  OpsMini() {
    grid = &ctx.decl_block(2, "grid");
    five = &ctx.decl_stencil(
        2,
        {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}, {{0, 1, 0}}, {{0, -1, 0}}},
        "5pt");
    u = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                              "u");
    unew = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                                 "unew");
    ops::par_loop(ctx, "init", *grid,
                  ops::Range::dim2(-1, nx + 1, -1, ny + 1),
                  [](ops::Acc<double> u, ops::Acc<double> un,
                     const int* idx) {
                    u(0, 0) = std::sin(0.4 * idx[0]) + 0.3 * idx[1];
                    un(0, 0) = 0.0;
                  },
                  ops::arg(*u, ops::Access::kWrite),
                  ops::arg(*unew, ops::Access::kWrite), ops::arg_idx());
  }
  void step() {
    ops::par_loop(ctx, "sweep", *grid, ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> u, ops::Acc<double> un, double* rms) {
                    un(0, 0) = 0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) +
                                       u(0, -1));
                    rms[0] += un(0, 0) * un(0, 0);
                  },
                  ops::arg(*u, *five, ops::Access::kRead),
                  ops::arg(*unew, ops::Access::kWrite),
                  ops::arg_gbl(&rms, 1, ops::Access::kInc));
    ops::par_loop(ctx, "copy", *grid, ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> un, ops::Acc<double> u) {
                    u(0, 0) = un(0, 0);
                  },
                  ops::arg(*unew, ops::Access::kRead),
                  ops::arg(*u, ops::Access::kWrite));
  }
  std::vector<double> state() {
    auto out = u->to_vector();
    out.push_back(rms);
    return out;
  }
  ops::index_t nx = 6, ny = 5;
  ops::Context ctx;
  ops::Block* grid;
  ops::Stencil* five;
  ops::Dat<double>* u;
  ops::Dat<double>* unew;
  double rms = 0.0;
};

TEST_F(KillRestoreTest, OpsCkptWriteKillSweepIsBitIdentical) {
  const std::string base = temp_base("resil_ops_sweep");
  const int total = 10;
  ops::Checkpointer::Options co;
  co.speculative = false;

  OpsMini ref;
  for (int s = 0; s < total; ++s) ref.step();
  const auto state_ref = ref.state();

  const auto run_to_second_save = [&](std::int64_t kill_offset) {
    OpsMini app;
    ops::Checkpointer ck(app.ctx, base, co);
    for (int s = 0; s < 3; ++s) app.step();
    ck.request_checkpoint();
    app.step();
    app.step();
    EXPECT_TRUE(ck.checkpoint_complete());
    if (kill_offset >= 0) {
      Config cfg;
      cfg.kill_at_ckpt_byte = kill_offset;
      Injector::global().arm(cfg);
    }
    ck.request_checkpoint();
    bool killed = false;
    try {
      for (int s = 0; s < 3; ++s) app.step();
    } catch (const apl::fault::Kill&) {
      killed = true;
    }
    Injector::global().disarm();
    return std::make_pair(killed, ck.store().last_write_bytes());
  };

  CheckpointStore(base).remove_files();
  const auto [dry_killed, total_bytes] = run_to_second_save(-1);
  ASSERT_FALSE(dry_killed);
  ASSERT_GT(total_bytes, 0u);
  CheckpointStore(base).remove_files();

  for (std::uint64_t k = 0; k < total_bytes; ++k) {
    const auto [killed, ignored] =
        run_to_second_save(static_cast<std::int64_t>(k));
    (void)ignored;
    ASSERT_TRUE(killed) << "kill offset " << k << " never fired";

    OpsMini app;
    ops::Checkpointer ck = ops::Checkpointer::restore(app.ctx, base);
    for (int s = 0; s < total; ++s) app.step();
    ASSERT_EQ(app.state(), state_ref) << "kill offset " << k;
    CheckpointStore(base).remove_files();
  }
}

// ---- simulated rank failure + collective rollback -------------------------

TEST_F(KillRestoreTest, Op2RankFailureRollsBackToCheckpoint) {
  const std::string base = temp_base("resil_op2_rank");
  const int nranks = 3;
  const int total = 10;

  // Reference: a fault-free distributed run of the same configuration.
  airfoil::Airfoil ref(airfoil_opts());
  ref.enable_distributed(nranks, apl::graph::PartitionMethod::kBlock);
  for (int it = 0; it < total; ++it) ref.iteration();
  const auto q_ref = ref.solution();

  airfoil::Airfoil app(airfoil_opts());
  app.enable_distributed(nranks, apl::graph::PartitionMethod::kBlock);
  op2::Distributed& dist = *app.distributed();
  CheckpointStore store(base);
  store.remove_files();

  Config cfg;
  cfg.fail_rank = 1;
  cfg.fail_at_exchange = 4;
  Injector::global().arm(cfg);

  int recoveries = 0;
  int it = 0;
  while (it < total) {
    if (it % 4 == 0) dist.checkpoint(store, it);
    try {
      app.iteration();
      ++it;
    } catch (const apl::fault::RankFailure& e) {
      EXPECT_EQ(e.rank(), 1);
      it = static_cast<int>(dist.recover(store));
      ++recoveries;
      ASSERT_LE(recoveries, 2) << "recovery loop did not converge";
    }
  }
  Injector::global().disarm();

  EXPECT_EQ(recoveries, 1);
  EXPECT_EQ(dist.comm().traffic().recoveries(), 1u);
  EXPECT_GT(dist.comm().traffic().recovery_bytes(), 0u);
  EXPECT_EQ(app.solution(), q_ref);
  store.remove_files();
}

TEST_F(KillRestoreTest, OpsRankFailureRollsBackToCheckpoint) {
  const std::string base = temp_base("resil_ops_rank");
  const int nranks = 4;
  const int total = 8;
  const ops::index_t nx = 12, ny = 10;

  const auto make = [&](ops::Context& ctx) {
    ops::Block* grid = &ctx.decl_block(2, "grid");
    ctx.decl_stencil(
        2,
        {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}, {{0, 1, 0}}, {{0, -1, 0}}},
        "5pt");
    ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0}, "u");
    ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                         "unew");
    ops::par_loop(ctx, "init", *grid,
                  ops::Range::dim2(-1, nx + 1, -1, ny + 1),
                  [](ops::Acc<double> u, ops::Acc<double> un,
                     const int* idx) {
                    u(0, 0) = std::cos(0.3 * idx[0]) - 0.2 * idx[1];
                    un(0, 0) = 0.0;
                  },
                  ops::arg(static_cast<ops::Dat<double>&>(ctx.dat(0)),
                           ops::Access::kWrite),
                  ops::arg(static_cast<ops::Dat<double>&>(ctx.dat(1)),
                           ops::Access::kWrite),
                  ops::arg_idx());
  };
  const auto sweep = [&](ops::Distributed& dist, ops::Context& ctx,
                         double* rms) {
    auto& u = static_cast<ops::Dat<double>&>(ctx.dat(0));
    auto& unew = static_cast<ops::Dat<double>&>(ctx.dat(1));
    const ops::Stencil& five = ctx.stencil(0);  // "5pt": declared first
    dist.par_loop("sweep", ctx.block(0), ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> u, ops::Acc<double> un, double* rms) {
                    un(0, 0) = 0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) +
                                       u(0, -1));
                    rms[0] += un(0, 0) * un(0, 0);
                  },
                  ops::arg(u, five, ops::Access::kRead),
                  ops::arg(unew, ops::Access::kWrite),
                  ops::arg_gbl(rms, 1, ops::Access::kInc));
    dist.par_loop("copy", ctx.block(0), ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> un, ops::Acc<double> u) {
                    u(0, 0) = un(0, 0);
                  },
                  ops::arg(unew, ops::Access::kRead),
                  ops::arg(u, ops::Access::kWrite));
  };

  // Reference.
  ops::Context ref_ctx;
  make(ref_ctx);
  ops::Distributed ref_dist(ref_ctx, nranks);
  double ref_rms = 0.0;
  for (int s = 0; s < total; ++s) sweep(ref_dist, ref_ctx, &ref_rms);
  ref_dist.fetch(ref_ctx.dat(0));
  const auto u_ref =
      static_cast<ops::Dat<double>&>(ref_ctx.dat(0)).to_vector();

  // Faulted run. The per-step reduction value is part of the rolled-back
  // state, so the step driver keeps it alongside the step counter.
  ops::Context ctx;
  make(ctx);
  ops::Distributed dist(ctx, nranks);
  CheckpointStore store(base);
  store.remove_files();

  Config cfg;
  cfg.fail_rank = 2;
  cfg.fail_at_exchange = 3;
  Injector::global().arm(cfg);

  double rms = 0.0;
  double rms_at_last_ckpt = 0.0;
  int recoveries = 0;
  int s = 0;
  while (s < total) {
    if (s % 3 == 0) {
      dist.checkpoint(store, s);
      rms_at_last_ckpt = rms;
    }
    try {
      sweep(dist, ctx, &rms);
      ++s;
    } catch (const apl::fault::RankFailure& e) {
      EXPECT_EQ(e.rank(), 2);
      s = static_cast<int>(dist.recover(store));
      rms = rms_at_last_ckpt;
      ++recoveries;
      ASSERT_LE(recoveries, 2) << "recovery loop did not converge";
    }
  }
  Injector::global().disarm();

  EXPECT_EQ(recoveries, 1);
  EXPECT_EQ(dist.comm().traffic().recoveries(), 1u);
  dist.fetch(ctx.dat(0));
  EXPECT_EQ(static_cast<ops::Dat<double>&>(ctx.dat(0)).to_vector(), u_ref);
  EXPECT_DOUBLE_EQ(rms, ref_rms);
  store.remove_files();
}

}  // namespace
