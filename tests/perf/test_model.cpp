#include "apl/perf/model.hpp"

#include <gtest/gtest.h>

#include "apl/error.hpp"
#include "apl/perf/machines.hpp"

namespace {

using apl::perf::LoopProfile;
using apl::perf::Machine;

TEST(Machines, RegistryHasPaperMachines) {
  for (const char* name :
       {"e5-2697v2", "e5-2640", "xeon-phi", "k40", "k20x", "k20m", "m2090",
        "xe6-node", "xk7-cpu"}) {
    EXPECT_NO_THROW(apl::perf::machine(name)) << name;
  }
  EXPECT_THROW(apl::perf::machine("cray-1"), apl::Error);
}

TEST(Machines, NetworksExist) {
  EXPECT_NO_THROW(apl::perf::network("gemini"));
  EXPECT_NO_THROW(apl::perf::network("infiniband"));
  EXPECT_THROW(apl::perf::network("carrier-pigeon"), apl::Error);
}

TEST(Model, DirectStreamNearPeakBandwidth) {
  const Machine& m = apl::perf::machine("e5-2697v2");
  LoopProfile p;
  p.bytes_direct = 10e9;
  p.elements = 1e7;
  const double gbs = apl::perf::projected_gbs(m, p);
  EXPECT_NEAR(gbs, m.bw_direct_gbs, m.bw_direct_gbs * 0.05);
}

TEST(Model, ScatterSlowerThanDirect) {
  const Machine& m = apl::perf::machine("xeon-phi");
  LoopProfile direct, scatter;
  direct.bytes_direct = scatter.bytes_scatter = 1e9;
  direct.elements = scatter.elements = 1e7;
  EXPECT_GT(apl::perf::projected_time(m, scatter),
            apl::perf::projected_time(m, direct) * 3);
}

TEST(Model, FlopBoundKernelIgnoresBandwidth) {
  const Machine& m = apl::perf::machine("e5-2697v2");
  LoopProfile p;
  p.bytes_direct = 1e6;       // negligible traffic
  p.flops = 1e12;             // heavy compute
  p.elements = 1e7;
  const double t = apl::perf::projected_time(m, p);
  EXPECT_NEAR(t, 1e12 / (m.flops_gf * 1e9), t * 0.05);
}

TEST(Model, SmallWorkloadEfficiencyPenalizesGpu) {
  const Machine& gpu = apl::perf::machine("k40");
  LoopProfile big, small;
  big.bytes_direct = 1e9;
  big.elements = 1e7;
  small.bytes_direct = 1e6;   // 1000x less work...
  small.elements = 1e4;       // ...but far below the GPU's n_half
  const double t_big = apl::perf::projected_time(gpu, big);
  const double t_small = apl::perf::projected_time(gpu, small);
  // Perfect scaling would give t_small == t_big/1000 (+overhead); the
  // efficiency term must make it substantially worse.
  EXPECT_GT(t_small, t_big / 1000 * 5);
}

TEST(Model, GpuFasterThanCpuOnBigStreams) {
  LoopProfile p;
  p.bytes_direct = 10e9;
  p.elements = 1e7;
  EXPECT_LT(apl::perf::projected_time(apl::perf::machine("k40"), p),
            apl::perf::projected_time(apl::perf::machine("e5-2697v2"), p));
}

TEST(Model, ScaledProfileScalesLinearly) {
  LoopProfile p;
  p.bytes_direct = 4e9;
  p.bytes_gather = 2e9;
  p.bytes_scatter = 1e9;
  p.flops = 5e9;
  p.elements = 1e6;
  const LoopProfile half = p.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.bytes_direct, 2e9);
  EXPECT_DOUBLE_EQ(half.bytes_gather, 1e9);
  EXPECT_DOUBLE_EQ(half.bytes_scatter, 0.5e9);
  EXPECT_DOUBLE_EQ(half.flops, 2.5e9);
  EXPECT_DOUBLE_EQ(half.elements, 0.5e6);
}

TEST(Model, SequenceTimeIsSumOfLoops) {
  const Machine& m = apl::perf::machine("e5-2640");
  LoopProfile a, b;
  a.bytes_direct = 1e9;
  a.elements = 1e6;
  b.bytes_gather = 1e9;
  b.elements = 1e6;
  EXPECT_DOUBLE_EQ(
      apl::perf::projected_time(m, std::vector<LoopProfile>{a, b}),
      apl::perf::projected_time(m, a) + apl::perf::projected_time(m, b));
}

TEST(Network, ExchangeTimeAlphaBets) {
  const auto& net = apl::perf::network("gemini");
  const double t1 = net.exchange_time(1, 0);
  EXPECT_DOUBLE_EQ(t1, net.alpha_s);
  const double t2 = net.exchange_time(4, 6'000'000);
  EXPECT_GT(t2, 4 * net.alpha_s);
  EXPECT_NEAR(t2 - 4 * net.alpha_s, 6e6 * net.beta_s_per_byte, 1e-9);
}

TEST(Network, AllreduceGrowsLogarithmically) {
  const auto& net = apl::perf::network("gemini");
  EXPECT_DOUBLE_EQ(net.allreduce_time(1), 0.0);
  const double t16 = net.allreduce_time(16);
  const double t256 = net.allreduce_time(256);
  EXPECT_NEAR(t256 / t16, 2.0, 1e-9);  // log2(256)/log2(16) == 2
}

TEST(Model, TableOneShapeHolds) {
  // The paper's Table I qualitative facts, checked against our calibrated
  // machines using synthetic loops of the right class mix:
  //   1. Phi beats CPU on direct loops but collapses on scatter loops.
  //   2. K40 leads everywhere, least so on scatter-heavy loops.
  const Machine& cpu = apl::perf::machine("e5-2697v2");
  const Machine& phi = apl::perf::machine("xeon-phi");
  const Machine& gpu = apl::perf::machine("k40");
  LoopProfile direct;
  direct.bytes_direct = 5e9;
  direct.elements = 1e7;
  LoopProfile scatter;  // res_calc-like: half gather, half scatter
  scatter.bytes_gather = 2.5e9;
  scatter.bytes_scatter = 2.5e9;
  scatter.elements = 1e7;

  EXPECT_LT(apl::perf::projected_time(phi, direct),
            apl::perf::projected_time(cpu, direct));
  EXPECT_GT(apl::perf::projected_time(phi, scatter),
            apl::perf::projected_time(cpu, scatter));
  EXPECT_LT(apl::perf::projected_time(gpu, direct),
            apl::perf::projected_time(phi, direct));
}

}  // namespace
