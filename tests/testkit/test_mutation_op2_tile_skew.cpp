// Mutation smoke test: the inspector under-skews the wavefront for
// indirect gathers (APL_MUTATE_OP2_TILE_SKEW) — a consumer element lands
// one tile earlier than the producer it reads through a map, so the fused
// run gathers a stale value. This is exactly the dependence bug the
// fusion legality rule (tile(l,e) >= tile(k,e') for dependent pairs)
// exists to prevent; the oracle must catch it in a lazy-tiled combo and
// attribute the stale read to the consuming loop and dat.
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OP2_TILE_SKEW
#error "build this test with -DAPL_MUTATE_OP2_TILE_SKEW"
#endif

namespace tk = apl::testkit;

TEST(MutationOp2TileSkew, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 40, [](std::uint64_t s) {
    return tk::run_op2_oracle(tk::gen_op2_case(s));
  });
  // Only chains with a cross-loop producer->indirect-consumer edge whose
  // skewed element actually straddles a tile boundary expose the bug; the
  // seed window must surface it repeatedly all the same.
  EXPECT_GE(scan.detections, 3) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "lazy-tiled");
}
