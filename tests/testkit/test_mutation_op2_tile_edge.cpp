// Mutation smoke test: the fused-tile executor drops the last element of
// every interior tile slice (APL_MUTATE_OP2_TILE_DROP_EDGE) — the classic
// off-by-one at a tile boundary. Any seed whose chain genuinely fuses
// (forced tile size 5 in the oracle's lazy-tiled combos) leaves boundary
// elements unprocessed, so the oracle must blame a lazy-tiled combo and
// name the exact loop/dat/element that went missing. The replicated
// lazy-tiled combos run before the dist-lazy ones and replicated chains
// fuse at least as much (dist adds exchange flush points), so the first
// divergence lands on "lazy-tiled*".
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OP2_TILE_DROP_EDGE
#error "build this test with -DAPL_MUTATE_OP2_TILE_DROP_EDGE"
#endif

namespace tk = apl::testkit;

TEST(MutationOp2TileDropEdge, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 40, [](std::uint64_t s) {
    return tk::run_op2_oracle(tk::gen_op2_case(s));
  });
  // Not every seed builds a fusable chain (reductions are flush points);
  // across the window the dropped boundary element must surface repeatedly.
  EXPECT_GE(scan.detections, 3) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "lazy-tiled");
}
