// Shared scan loop for the mutation smoke tests. Each mutation executable
// is compiled with exactly one APL_MUTATE_* definition switched on, which
// plants a known bug in one backend; the differential oracle run over a
// window of fixed seeds must detect it, naming the diverging loop and dat.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apl/testkit/gen.hpp"
#include "apl/testkit/oracle.hpp"

namespace apl::testkit {

struct MutationScan {
  int detections = 0;
  std::vector<Divergence> divergences;
};

/// Runs `oracle(seed)` for seeds in [first, last], collecting divergences.
template <class Oracle>
MutationScan scan_seeds(std::uint64_t first, std::uint64_t last,
                        Oracle&& oracle) {
  MutationScan out;
  for (std::uint64_t s = first; s <= last; ++s) {
    if (auto d = oracle(s)) {
      ++out.detections;
      out.divergences.push_back(*d);
    }
  }
  return out;
}

/// Every detection must be attributable: a combo name, a loop or final
/// state, and a dat (or "<reduction>") — the report a developer debugs
/// from. `combo_substr` pins the sabotaged backend as the one blamed.
inline void expect_attributed(const MutationScan& scan,
                              const std::string& combo_substr) {
  for (const Divergence& d : scan.divergences) {
    EXPECT_NE(d.combo.find(combo_substr), std::string::npos) << d.message;
    EXPECT_FALSE(d.dat.empty()) << d.message;
    EXPECT_FALSE(d.message.empty());
    if (d.loop >= 0) {
      EXPECT_FALSE(d.loop_name.empty()) << d.message;
    }
  }
}

}  // namespace apl::testkit
