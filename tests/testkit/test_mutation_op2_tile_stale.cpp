// Mutation smoke test: the fused-tile executor runs the final tile's loop
// slices in reverse chain order (APL_MUTATE_OP2_TILE_STALE) — consumers
// execute before their producers, so every cross-loop intermediate in the
// last tile is read stale. Any fusable chain with a dependent pair must
// diverge, blamed on a lazy-tiled combo with the consuming loop named.
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OP2_TILE_STALE
#error "build this test with -DAPL_MUTATE_OP2_TILE_STALE"
#endif

namespace tk = apl::testkit;

TEST(MutationOp2TileStale, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 40, [](std::uint64_t s) {
    return tk::run_op2_oracle(tk::gen_op2_case(s));
  });
  EXPECT_GE(scan.detections, 3) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "lazy-tiled");
}
