// Mutation smoke test: the OPS threads backend drops the last row of the
// partitioned dimension (APL_MUTATE_OPS_RANGE_TAIL). The sequential
// baseline keeps the full range, so the oracle must blame a threads combo
// and name the loop whose top row went stale.
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OPS_RANGE_TAIL
#error "build this test with -DAPL_MUTATE_OPS_RANGE_TAIL"
#endif

namespace tk = apl::testkit;

TEST(MutationOpsRangeTail, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 40, [](std::uint64_t s) {
    return tk::run_ops_oracle(tk::gen_ops_case(s));
  });
  EXPECT_GE(scan.detections, 10) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "threads");
}
