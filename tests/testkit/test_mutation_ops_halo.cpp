// Mutation smoke test: the OPS distributed halo exchange ships one column
// less than the declared depth (APL_MUTATE_OPS_HALO_WIDTH), leaving the
// outermost low-x halo layer stale. The hook lives in src/ops/dist.cpp, so
// this executable recompiles that file with the define; the resulting
// object preempts the clean copy in the opal_ops archive at link time.
// Only stencil loops that read across a rank boundary see the stale layer,
// so detections are sparser than the in-header mutations.
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OPS_HALO_WIDTH
#error "build this test with -DAPL_MUTATE_OPS_HALO_WIDTH"
#endif

namespace tk = apl::testkit;

TEST(MutationOpsHaloWidth, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 80, [](std::uint64_t s) {
    return tk::run_ops_oracle(tk::gen_ops_case(s));
  });
  EXPECT_GE(scan.detections, 3) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "dist");
}
