// Differential-oracle tests: the fixed-seed sweep that gates tier-1, the
// forced-failure path exercising detection + shrinking end to end, and the
// APL_TESTKIT_SEED replay entry point a failure report names.
#include <gtest/gtest.h>

#include <string>

#include "apl/testkit/testkit.hpp"

namespace tk = apl::testkit;

// A bounded sweep with fixed seeds: every execution combination agrees on
// every generated program. Deliberately small — the long sweep runs as the
// tier-2 ctest target and via tools/fuzz.sh.
TEST(TestkitOracle, FixedSeedSweepIsClean) {
  for (std::uint64_t s = 1; s <= 25; ++s) {
    const tk::FuzzReport rep = tk::fuzz_case(s);
    EXPECT_TRUE(rep.ok) << rep.message;
  }
}

// The replay channel: a failure report prints APL_TESTKIT_SEED=<n>; running
// this one test with the variable set reproduces the full pipeline (case,
// oracle, shrink) for that seed alone.
TEST(Testkit, Replay) {
  const auto seed = tk::seed_from_env();
  if (!seed) {
    GTEST_SKIP() << "set APL_TESTKIT_SEED to replay a reported failure";
  }
  const tk::FuzzReport rep = tk::fuzz_case(*seed);
  EXPECT_TRUE(rep.ok) << rep.message;
}

// Forced failure: bias the kernel coefficients in one combo so the oracle
// must detect a divergence, shrink it, and emit a self-contained report.
// This exercises the same machinery a real bug flows through.
TEST(TestkitOracle, ForcedFailureIsDetectedAndShrunk) {
  tk::OracleOptions opt;
  opt.bias = 1e-3;
  opt.bias_combo = "threads";

  int detected = 0;
  for (std::uint64_t s = 1; s <= 5 && detected == 0; ++s) {
    const tk::Op2CaseSpec spec = tk::gen_op2_case(s);
    auto first = tk::run_op2_oracle(spec, opt);
    if (!first) continue;  // a case may touch no dat in the biased combo
    ++detected;
    EXPECT_EQ(first->combo, "threads") << first->message;
    EXPECT_FALSE(first->message.empty());

    auto test = [&](const tk::Op2CaseSpec& c) {
      return tk::run_op2_oracle(c, opt);
    };
    const auto min = tk::shrink_op2(spec, *first, test);
    // The minimized case still fails, in the same combo, and is no larger
    // than what we started with.
    EXPECT_EQ(min.divergence.combo, "threads");
    EXPECT_LE(min.spec.loops.size(), spec.loops.size());
    EXPECT_LE(min.spec.dats.size(), spec.dats.size());
    EXPECT_FALSE(min.spec.describe().empty());

    // And the whole pipeline replays from the seed alone: regenerating the
    // case from the spec's recorded seed and re-shrinking lands on the
    // same minimized description.
    const tk::Op2CaseSpec again = tk::gen_op2_case(min.spec.seed);
    EXPECT_EQ(again.describe(), tk::gen_op2_case(s).describe());
    auto refirst = tk::run_op2_oracle(again, opt);
    ASSERT_TRUE(refirst.has_value());
    const auto remin = tk::shrink_op2(again, *refirst, test);
    EXPECT_EQ(remin.spec.describe(), min.spec.describe());
  }
  EXPECT_GE(detected, 1) << "bias sabotage was never detected";
}

// Same forced-failure path at the fuzz_case level: the report must carry
// the replay command so a failure is reproducible from the seed alone.
TEST(TestkitOracle, FailureReportNamesTheReplaySeed) {
  tk::FuzzOptions opt;
  opt.oracle.bias = 1e-3;
  opt.oracle.bias_combo = "threads";
  opt.run_ops = false;

  const tk::FuzzReport rep = tk::fuzz_case(1, opt);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.message.find("APL_TESTKIT_SEED=1"), std::string::npos)
      << rep.message;
  EXPECT_NE(rep.message.find("case:"), std::string::npos) << rep.message;
}

// The OPS side of the forced-failure path.
TEST(TestkitOracle, OpsForcedFailureIsDetected) {
  tk::OracleOptions opt;
  opt.bias = 1e-3;
  opt.bias_combo = "threads";

  int detected = 0;
  for (std::uint64_t s = 1; s <= 8 && detected == 0; ++s) {
    const tk::OpsCaseSpec spec = tk::gen_ops_case(s);
    auto first = tk::run_ops_oracle(spec, opt);
    if (!first) continue;
    ++detected;
    EXPECT_EQ(first->combo, "threads") << first->message;
    auto test = [&](const tk::OpsCaseSpec& c) {
      return tk::run_ops_oracle(c, opt);
    };
    const auto min = tk::shrink_ops(spec, *first, test);
    EXPECT_EQ(min.divergence.combo, "threads");
    EXPECT_LE(min.spec.loops.size(), spec.loops.size());
  }
  EXPECT_GE(detected, 1);
}
