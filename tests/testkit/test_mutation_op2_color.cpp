// Mutation smoke test: the threads plan executor silently skips the last
// color (APL_MUTATE_OP2_SKIP_LAST_COLOR). Multi-color plans only arise on
// indirect-increment loops, so the oracle must blame a threads combo and
// name the loop whose scatters went missing.
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OP2_SKIP_LAST_COLOR
#error "build this test with -DAPL_MUTATE_OP2_SKIP_LAST_COLOR"
#endif

namespace tk = apl::testkit;

TEST(MutationOp2SkipLastColor, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 40, [](std::uint64_t s) {
    return tk::run_op2_oracle(tk::gen_op2_case(s));
  });
  // Not every seed generates a multi-color plan; across the window the
  // bug must surface repeatedly.
  EXPECT_GE(scan.detections, 3) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "threads");
}
