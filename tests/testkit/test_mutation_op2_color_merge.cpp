// Mutation smoke test: the inspector relabels the last tile color into the
// previous one (APL_MUTATE_OP2_COLOR_MERGE), so two conflicting tiles share
// a round. The serial tile walk is color-blind and cannot diverge, which is
// exactly why the oracle's threaded-exec combos audit schedules with
// apl::verify::kPlan: the round-legality walk must flag the merged color on
// any chain whose last two tiles conflict, and the combo's throw is blamed
// on a lazy-tiled backend. The second test proves the *other* net catches
// it too — under ThreadSanitizer the merged round really does race.
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OP2_COLOR_MERGE
#error "build this test with -DAPL_MUTATE_OP2_COLOR_MERGE"
#endif

#include <cstdlib>
#include <vector>

#include "apl/thread_pool.hpp"
#include "apl/verify.hpp"
#include "op2/op2.hpp"

namespace tk = apl::testkit;

TEST(MutationOp2ColorMerge, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 40, [](std::uint64_t s) {
    return tk::run_op2_oracle(tk::gen_op2_case(s));
  });
  EXPECT_GE(scan.detections, 3) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "lazy-tiled");
}

// Runs the merged schedule for real on a 4-member team over a chain mesh
// where every tile conflicts with its neighbour: the two tiles sharing the
// merged color increment the same boundary node concurrently, a write-write
// race ThreadSanitizer flags from its happens-before history even on one
// core. Opt-in (APL_EXPECT_TSAN=1): the racing run is only meaningful —
// and only expected to fail — under -fsanitize=thread, where ci.sh runs it
// expecting a nonzero exit. Everywhere else it must stay skipped or the
// race would silently corrupt a checksum nobody asserts on.
TEST(MutationOp2ColorMerge, TsanCatchesMergedRounds) {
  const char* expect = std::getenv("APL_EXPECT_TSAN");
  if (expect == nullptr || std::string_view(expect) != "1") {
    GTEST_SKIP() << "set APL_EXPECT_TSAN=1 under -fsanitize=thread";
  }

  using apl::exec::Access;
  constexpr op2::index_t kNodes = 400;
  constexpr op2::index_t kEdges = kNodes - 1;

  op2::Context ctx;
  ctx.set_verify(0);  // audit off: we want the merged round to *execute*
  op2::Set& nodes = ctx.decl_set(kNodes, "nodes");
  op2::Set& edges = ctx.decl_set(kEdges, "edges");
  std::vector<op2::index_t> table(2 * kEdges);
  for (op2::index_t e = 0; e < kEdges; ++e) {
    table[2 * e] = e;
    table[2 * e + 1] = e + 1;
  }
  op2::Map& e2n = ctx.decl_map(edges, nodes, 2, table, "e2n");
  std::vector<double> xi(kNodes, 1.0);
  op2::Dat<double>& x = ctx.decl_dat<double>(nodes, 1, xi, "x");

  apl::ThreadPool pool(4);
  ctx.set_tile_team(&pool);
  ctx.set_tile_size(5);
  ctx.set_lazy(true);
  for (int rep = 0; rep < 10; ++rep) {
    for (int step = 0; step < 2; ++step) {
      op2::par_loop(
          ctx, "smooth", edges,
          [](op2::Acc<double> a, op2::Acc<double> b) {
            a[0] += 0.125;
            b[0] += 0.125;
          },
          op2::arg(x, e2n, 0, Access::kInc),
          op2::arg(x, e2n, 1, Access::kInc));
    }
    ctx.flush();
  }
  // Reaching here without a TSan report means the merged rounds executed
  // cleanly — the harness (ci.sh) fails the stage when the exit code is 0.
  SUCCEED();
}
