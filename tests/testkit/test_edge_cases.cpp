// Accounting edge cases the fuzzer's degenerate shapes exposed as worth
// pinning: empty sets, zero-iteration ranges and pure-reduction loops must
// leave the per-loop profile, the perf model, and the mpisim traffic
// ledger in sane (zero, finite, never-NaN) states.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "apl/mpisim/comm.hpp"
#include "apl/perf/machines.hpp"
#include "apl/perf/model.hpp"
#include "apl/testkit/fixtures.hpp"

using apl::exec::Access;

TEST(EdgeCases, Op2EmptySetLoopIsANoop) {
  op2::Context ctx;
  const op2::Set& empty = ctx.decl_set(0, "empty");
  auto& d = ctx.decl_dat<double>(empty, 1, std::span<const double>{}, "d");
  double sum = 1.25;
  op2::par_loop(ctx, "empty_direct", empty,
                [](op2::Acc<double> v, op2::Acc<double> s) {
                  v[0] = 2.0;
                  s[0] += v[0];
                },
                op2::arg(d, Access::kRW),
                op2::arg_gbl(&sum, 1, Access::kInc));
  // The reduction must come back untouched (no garbage contribution from
  // a zero-trip loop) and the stats must record the call with zero work.
  EXPECT_EQ(sum, 1.25);
  const apl::LoopStats& st = ctx.profile().stats("empty_direct");
  EXPECT_EQ(st.calls, 1u);
  EXPECT_EQ(st.elements, 0u);
  EXPECT_EQ(st.bytes(), 0u);
  EXPECT_FALSE(std::isnan(st.gb_per_s()));
}

TEST(EdgeCases, Op2PureReductionCountsNoScatterBytes) {
  op2::Context ctx;
  apl::testkit::GridMesh mesh = apl::testkit::make_grid(4, 3);
  const op2::Set& nodes = ctx.decl_set(mesh.num_nodes(), "nodes");
  auto& q = ctx.decl_dat<double>(nodes, 1, std::span<const double>{}, "q");
  double sum = 0;
  op2::par_loop(ctx, "pure_red", nodes,
                [](op2::Acc<double> v, op2::Acc<double> s) { s[0] += v[0]; },
                op2::arg(q, Access::kRead),
                op2::arg_gbl(&sum, 1, Access::kInc));
  const apl::LoopStats& st = ctx.profile().stats("pure_red");
  EXPECT_EQ(st.elements, static_cast<std::uint64_t>(nodes.size()));
  // Reading q is direct streaming; a reduction scatters nothing.
  EXPECT_GT(st.bytes_direct, 0u);
  EXPECT_EQ(st.bytes_gather, 0u);
  EXPECT_EQ(st.bytes_scatter, 0u);
}

TEST(EdgeCases, OpsZeroIterationRangeLeavesDataAndStatsAlone) {
  apl::testkit::HeatGrid h(4, 3);
  ops::par_loop(h.ctx, "fill", *h.grid, h.with_halo(),
                [](ops::Acc<double> u) { u(0, 0) = 3.0; },
                ops::arg(*h.u, Access::kWrite));
  // lo == hi along x: zero trips even though y spans the block.
  ops::par_loop(h.ctx, "empty_range", *h.grid, ops::Range::dim2(2, 2, 0, 3),
                [](ops::Acc<double> u) { u(0, 0) = -1.0; },
                ops::arg(*h.u, Access::kWrite));
  for (double v : h.u->to_vector()) EXPECT_EQ(v, 3.0);
  const apl::LoopStats& st = h.ctx.profile().stats("empty_range");
  EXPECT_EQ(st.calls, 1u);
  EXPECT_EQ(st.elements, 0u);
  EXPECT_EQ(st.bytes(), 0u);
}

TEST(EdgeCases, PerfModelIsFiniteOnZeroProfile) {
  const apl::perf::Machine& m = apl::perf::machine("e5-2697v2");
  apl::perf::LoopProfile p;  // all-zero: a loop that never iterated
  const double t = apl::perf::projected_time(m, p);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GE(t, 0.0);  // launch overhead only
  const double gbs = apl::perf::projected_gbs(m, p);
  EXPECT_TRUE(std::isfinite(gbs));
  EXPECT_EQ(gbs, 0.0);
}

TEST(EdgeCases, PerfModelScalingByZeroZeroesExtensiveQuantities) {
  apl::perf::LoopProfile p;
  p.bytes_direct = 64;
  p.bytes_gather = 32;
  p.bytes_scatter = 16;
  p.flops = 100;
  p.elements = 8;
  const apl::perf::LoopProfile z = p.scaled(0.0);
  EXPECT_EQ(z.total_bytes(), 0.0);
  EXPECT_EQ(z.flops, 0.0);
  EXPECT_EQ(z.elements, 0.0);
}

TEST(EdgeCases, TrafficLedgerHandlesEmptyAndZeroByteTraffic) {
  apl::mpisim::Traffic t;
  EXPECT_EQ(t.total_bytes(), 0u);
  EXPECT_EQ(t.max_rank_bytes(), 0u);
  EXPECT_EQ(t.max_rank_peers(), 0);
  t.record(0, 1, 0);  // zero-byte message still counts as a message
  EXPECT_EQ(t.messages(), 1u);
  EXPECT_EQ(t.total_bytes(), 0u);
  EXPECT_EQ(t.max_rank_peers(), 1);
}

TEST(EdgeCases, DistributedPureReductionMovesNoHaloBytes) {
  op2::Context ctx;
  apl::testkit::GridMesh mesh = apl::testkit::make_grid(4, 4);
  const op2::Set& nodes = ctx.decl_set(mesh.num_nodes(), "nodes");
  std::vector<double> qi(static_cast<std::size_t>(nodes.size()), 1.0);
  auto& q = ctx.decl_dat<double>(nodes, 1, qi, "q");
  op2::Distributed dist(ctx, 2, apl::graph::PartitionMethod::kBlock, nodes);
  double sum = 0;
  dist.par_loop("dist_red", nodes,
                [](op2::Acc<double> v, op2::Acc<double> s) { s[0] += v[0]; },
                op2::arg(q, Access::kRead),
                op2::arg_gbl(&sum, 1, Access::kInc));
  EXPECT_EQ(sum, static_cast<double>(nodes.size()));
  // A pure reduction exchanges no halos; it costs exactly one allreduce.
  EXPECT_EQ(ctx.profile().stats("dist_red").halo_bytes, 0u);
  EXPECT_EQ(dist.comm().traffic().allreduces(), 1u);
}
