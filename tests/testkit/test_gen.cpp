// Generator contracts: a seed is a complete repro (bit-identical replay)
// and every generated case is access-legal by construction — the oracle
// relies on both, so they are pinned here independently of it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "apl/testkit/gen.hpp"

namespace tk = apl::testkit;

TEST(TestkitGen, Op2CasesReplayBitIdentically) {
  for (std::uint64_t s : {1ull, 7ull, 99ull, 0xdeadbeefull}) {
    const tk::Op2CaseSpec a = tk::gen_op2_case(s);
    const tk::Op2CaseSpec b = tk::gen_op2_case(s);
    EXPECT_EQ(a.describe(), b.describe());
    ASSERT_EQ(a.maps.size(), b.maps.size());
    for (std::size_t m = 0; m < a.maps.size(); ++m) {
      EXPECT_EQ(tk::op2_map_table(a.maps[m], a.set_sizes),
                tk::op2_map_table(b.maps[m], b.set_sizes));
    }
    ASSERT_EQ(a.dats.size(), b.dats.size());
    for (std::size_t d = 0; d < a.dats.size(); ++d) {
      EXPECT_EQ(tk::op2_dat_init(a.dats[d], a.set_sizes[a.dats[d].set]),
                tk::op2_dat_init(b.dats[d], b.set_sizes[b.dats[d].set]));
    }
  }
}

TEST(TestkitGen, OpsCasesReplayBitIdentically) {
  for (std::uint64_t s : {1ull, 13ull, 324ull, 0xabcdefull}) {
    const tk::OpsCaseSpec a = tk::gen_ops_case(s);
    const tk::OpsCaseSpec b = tk::gen_ops_case(s);
    EXPECT_EQ(a.describe(), b.describe());
    ASSERT_EQ(a.dats.size(), b.dats.size());
  }
}

TEST(TestkitGen, DistinctSeedsGiveDistinctCases) {
  // Not a hard guarantee for any single pair, but across a small window
  // the generator must not collapse to one shape.
  std::set<std::string> shapes;
  for (std::uint64_t s = 1; s <= 20; ++s) {
    shapes.insert(tk::gen_op2_case(s).describe());
  }
  EXPECT_GT(shapes.size(), 15u);
}

TEST(TestkitGen, Op2CasesAreAccessLegal) {
  for (std::uint64_t s = 1; s <= 200; ++s) {
    const tk::Op2CaseSpec c = tk::gen_op2_case(s);
    ASSERT_FALSE(c.set_sizes.empty()) << "seed " << s;
    EXPECT_GT(c.set_sizes[0], 0) << "seed " << s;
    ASSERT_FALSE(c.loops.empty()) << "seed " << s;
    const int nsets = static_cast<int>(c.set_sizes.size());
    const int ndats = static_cast<int>(c.dats.size());
    for (const tk::Op2MapSpec& m : c.maps) {
      ASSERT_GE(m.from, 0);
      ASSERT_LT(m.from, nsets);
      ASSERT_GE(m.to, 0);
      ASSERT_LT(m.to, nsets);
      ASSERT_GE(m.arity, 1);
      EXPECT_GT(c.set_sizes[m.to], 0)
          << "seed " << s << ": map into an empty set is undeclarable";
      const auto table = tk::op2_map_table(m, c.set_sizes);
      ASSERT_EQ(table.size(),
                static_cast<std::size_t>(c.set_sizes[m.from]) * m.arity);
      for (tk::index_t t : table) {
        ASSERT_GE(t, 0) << "seed " << s;
        ASSERT_LT(t, c.set_sizes[m.to]) << "seed " << s;
      }
    }
    for (const tk::Op2DatSpec& d : c.dats) {
      ASSERT_GE(d.set, 0);
      ASSERT_LT(d.set, nsets);
      ASSERT_GE(d.dim, 1);
      for (double v : tk::op2_dat_init(d, c.set_sizes[d.set])) {
        ASSERT_GE(v, 0.5);
        ASSERT_LT(v, 1.5);
      }
    }
    for (const tk::Op2LoopSpec& L : c.loops) {
      switch (L.kind) {
        case tk::Op2LoopKind::kDirect:
          ASSERT_GE(L.src, 0);
          ASSERT_LT(L.src, ndats);
          ASSERT_GE(L.dst, 0);
          ASSERT_LT(L.dst, ndats);
          EXPECT_EQ(c.dats[L.src].set, c.dats[L.dst].set) << "seed " << s;
          if (L.src2 >= 0) {
            ASSERT_LT(L.src2, ndats);
            EXPECT_EQ(c.dats[L.src2].set, c.dats[L.dst].set) << "seed " << s;
          }
          break;
        case tk::Op2LoopKind::kGather:
          ASSERT_GE(L.map, 0);
          ASSERT_LT(L.map, static_cast<int>(c.maps.size()));
          ASSERT_GE(L.src, 0);
          ASSERT_LT(L.src, ndats);
          ASSERT_GE(L.dst, 0);
          ASSERT_LT(L.dst, ndats);
          EXPECT_EQ(c.dats[L.dst].set, c.maps[L.map].from) << "seed " << s;
          EXPECT_EQ(c.dats[L.src].set, c.maps[L.map].to) << "seed " << s;
          break;
        case tk::Op2LoopKind::kScatter:
          ASSERT_GE(L.map, 0);
          ASSERT_LT(L.map, static_cast<int>(c.maps.size()));
          ASSERT_GE(L.src, 0);
          ASSERT_LT(L.src, ndats);
          ASSERT_GE(L.dst, 0);
          ASSERT_LT(L.dst, ndats);
          EXPECT_EQ(c.dats[L.src].set, c.maps[L.map].from) << "seed " << s;
          EXPECT_EQ(c.dats[L.dst].set, c.maps[L.map].to) << "seed " << s;
          break;
        case tk::Op2LoopKind::kReduction:
          ASSERT_GE(L.src, 0);
          ASSERT_LT(L.src, ndats);
          break;
      }
    }
  }
}

TEST(TestkitGen, OpsCasesAreAccessLegal) {
  for (std::uint64_t s = 1; s <= 200; ++s) {
    const tk::OpsCaseSpec c = tk::gen_ops_case(s);
    ASSERT_GE(c.ndim, 1) << "seed " << s;
    ASSERT_LE(c.ndim, 3) << "seed " << s;
    ASSERT_GE(c.nblocks, 1);
    ASSERT_LE(c.nblocks, 2);
    ASSERT_FALSE(c.loops.empty()) << "seed " << s;
    for (int d = 0; d < 3; ++d) {
      ASSERT_GE(c.size[d], 1) << "seed " << s;
      ASSERT_GE(c.halo[d], 0) << "seed " << s;
      if (d >= c.ndim) {
        EXPECT_EQ(c.size[d], 1) << "seed " << s;
        EXPECT_EQ(c.halo[d], 0) << "seed " << s;
      }
    }
    for (const tk::OpsStencilSpec& st : c.stencils) {
      ASSERT_GE(st.npoints, 1);
      ASSERT_LE(st.npoints, tk::kMaxStencilPoints);
      for (int p = 0; p < st.npoints; ++p) {
        for (int d = 0; d < 3; ++d) {
          EXPECT_LE(std::abs(st.points[p][d]), c.halo[d])
              << "seed " << s << ": stencil offset outside the halo";
        }
      }
    }
    for (const tk::OpsDatSpec& d : c.dats) {
      ASSERT_GE(d.block, 0);
      ASSERT_LT(d.block, c.nblocks);
      ASSERT_GE(d.dim, 1);
    }
    for (const tk::OpsLoopSpec& L : c.loops) {
      if (L.kind == tk::OpsLoopKind::kHaloTransfer) {
        ASSERT_GE(L.halo, 0);
        ASSERT_LT(L.halo, static_cast<int>(c.halos.size()));
        continue;
      }
      for (int d = 0; d < 3; ++d) {
        EXPECT_GE(L.lo[d], -c.halo[d]) << "seed " << s;
        EXPECT_LE(L.hi[d], c.size[d] + c.halo[d]) << "seed " << s;
        EXPECT_LE(L.lo[d], L.hi[d]) << "seed " << s;
      }
      if (L.dst >= 0) {
        ASSERT_LT(L.dst, static_cast<int>(c.dats.size()));
      }
      if (L.src >= 0) {
        ASSERT_LT(L.src, static_cast<int>(c.dats.size()));
      }
      if (L.kind == tk::OpsLoopKind::kStencilAvg) {
        ASSERT_GE(L.stencil, 0);
        ASSERT_LT(L.stencil, static_cast<int>(c.stencils.size()));
        // Stencil reads from the interior range stay inside the halo; the
        // generator must not emit a range whose stencil reach escapes the
        // source allocation.
        const tk::OpsStencilSpec& st = c.stencils[L.stencil];
        for (int p = 0; p < st.npoints; ++p) {
          for (int d = 0; d < 3; ++d) {
            EXPECT_GE(L.lo[d] + st.points[p][d], -c.halo[d]) << "seed " << s;
            EXPECT_LE(L.hi[d] + st.points[p][d], c.size[d] + c.halo[d])
                << "seed " << s;
          }
        }
      }
    }
  }
}
