// Mutation smoke test: the simd backend drops the last lane of the final
// pack (APL_MUTATE_OP2_SIMD_TAIL) — the classic remainder-loop bug. Every
// loop leaves its last element unprocessed, so nearly every seed must
// diverge, blamed on the simd combo.
#include "mutation_scan.hpp"

#ifndef APL_MUTATE_OP2_SIMD_TAIL
#error "build this test with -DAPL_MUTATE_OP2_SIMD_TAIL"
#endif

namespace tk = apl::testkit;

TEST(MutationOp2SimdTail, OracleDetectsIt) {
  const tk::MutationScan scan = tk::scan_seeds(1, 40, [](std::uint64_t s) {
    return tk::run_op2_oracle(tk::gen_op2_case(s));
  });
  EXPECT_GE(scan.detections, 20) << "mutation escaped the oracle";
  tk::expect_attributed(scan, "simd");
}
