// ops::par_loop semantics: kernel accessor correctness, reductions,
// arg_idx, cross-backend equivalence on a heat-equation sweep, stencil
// debug checking.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "apl/testkit/fixtures.hpp"
#include "ops/ops.hpp"

namespace {

using ops::Access;
using ops::index_t;

// Declarations (block, 5pt stencil, u/t field pair) come from the shared
// testkit fixture; `unew` keeps this file's historical name for t.
struct HeatFixture : apl::testkit::HeatGrid {
  ops::Dat<double>* unew = nullptr;

  explicit HeatFixture(index_t nx = 16, index_t ny = 12) : HeatGrid(nx, ny) {
    unew = t;
    // Initialize interior + halos with a smooth field via arg_idx.
    ops::par_loop(ctx, "init", *grid,
                  ops::Range::dim2(-1, nx + 1, -1, ny + 1),
                  [](ops::Acc<double> u, const int* idx) {
                    u(0, 0) = std::sin(0.3 * idx[0]) + std::cos(0.2 * idx[1]);
                  },
                  ops::arg(*u, Access::kWrite),
                  ops::arg_idx());
  }

  void sweep() {
    ops::par_loop(ctx, "jacobi", *grid, ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> u, ops::Acc<double> out) {
                    out(0, 0) = 0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) +
                                        u(0, -1));
                  },
                  ops::arg(*u, *five, Access::kRead),
                  ops::arg(*unew, Access::kWrite));
    ops::par_loop(ctx, "copy", *grid, ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> out, ops::Acc<double> u) {
                    u(0, 0) = out(0, 0);
                  },
                  ops::arg(*unew, Access::kRead),
                  ops::arg(*u, Access::kWrite));
  }

  std::vector<double> interior() const {
    std::vector<double> out;
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) out.push_back(*u->at(i, j));
    }
    return out;
  }
};

TEST(OpsParLoop, StencilReadsNeighbours) {
  HeatFixture h(6, 5);
  // Set a delta at (2,2) and diffuse once: neighbours get 0.25.
  ops::par_loop(h.ctx, "zero", *h.grid, ops::Range::dim2(-1, 7, -1, 6),
                [](ops::Acc<double> u) { u(0, 0) = 0.0; },
                ops::arg(*h.u, Access::kWrite));
  *h.u->at(2, 2) = 1.0;
  h.sweep();
  EXPECT_DOUBLE_EQ(*h.u->at(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(*h.u->at(3, 2), 0.25);
  EXPECT_DOUBLE_EQ(*h.u->at(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(*h.u->at(2, 3), 0.25);
  EXPECT_DOUBLE_EQ(*h.u->at(2, 1), 0.25);
  EXPECT_DOUBLE_EQ(*h.u->at(3, 3), 0.0);
}

TEST(OpsParLoop, ArgIdxReportsGlobalIndices) {
  HeatFixture h(4, 3);
  std::vector<int> seen;
  double checksum = 0;
  ops::par_loop(h.ctx, "idx", *h.grid, ops::Range::dim2(1, 3, 2, 3),
                [&](const int* idx, double* sum) {
                  seen.push_back(idx[0]);
                  seen.push_back(idx[1]);
                  sum[0] += idx[0] * 10 + idx[1];
                },
                ops::arg_idx(),
                ops::arg_gbl(&checksum, 1, Access::kInc));
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 2, 2}));
  EXPECT_DOUBLE_EQ(checksum, 12 + 22);
}

TEST(OpsParLoop, Reductions) {
  HeatFixture h;
  double sum = 0, mn = 1e300, mx = -1e300;
  ops::par_loop(h.ctx, "reduce", *h.grid,
                ops::Range::dim2(0, h.nx, 0, h.ny),
                [](ops::Acc<double> u, double* s, double* lo, double* hi) {
                  s[0] += u(0, 0);
                  lo[0] = std::min(lo[0], u(0, 0));
                  hi[0] = std::max(hi[0], u(0, 0));
                },
                ops::arg(*h.u, Access::kRead),
                ops::arg_gbl(&sum, 1, Access::kInc),
                ops::arg_gbl(&mn, 1, Access::kMin),
                ops::arg_gbl(&mx, 1, Access::kMax));
  double want = 0;
  for (double v : h.interior()) want += v;
  EXPECT_NEAR(sum, want, 1e-12 * std::abs(want));
  EXPECT_LE(mn, mx);
  EXPECT_LT(mx, 2.1);
}

class OpsBackends : public ::testing::TestWithParam<ops::Backend> {};

TEST_P(OpsBackends, HeatSweepMatchesSeq) {
  HeatFixture ref;
  for (int s = 0; s < 5; ++s) ref.sweep();
  HeatFixture h;
  h.ctx.set_backend(GetParam());
  for (int s = 0; s < 5; ++s) h.sweep();
  const auto a = ref.interior();
  const auto b = h.interior();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << i;
  }
}

TEST_P(OpsBackends, ReductionsMatchSeq) {
  HeatFixture h;
  h.ctx.set_backend(GetParam());
  double sum = 0;
  ops::par_loop(h.ctx, "sum", *h.grid, ops::Range::dim2(0, h.nx, 0, h.ny),
                [](ops::Acc<double> u, double* s) { s[0] += u(0, 0); },
                ops::arg(*h.u, Access::kRead),
                ops::arg_gbl(&sum, 1, Access::kInc));
  double want = 0;
  for (double v : h.interior()) want += v;
  EXPECT_NEAR(sum, want, 1e-12 * (1 + std::abs(want)));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OpsBackends,
                         ::testing::Values(ops::Backend::kSeq,
                                           ops::Backend::kThreads,
                                           ops::Backend::kCudaSim),
                         [](const auto& info) {
                           return ops::to_string(info.param);
                         });

TEST(OpsParLoop, StencilCheckerCatchesUndeclaredAccess) {
  HeatFixture h;
  h.ctx.set_debug_checks(true);
  // Kernel reads offset (1,1) which the 5-point stencil does not declare.
  EXPECT_THROW(
      ops::par_loop(h.ctx, "evil", *h.grid, ops::Range::dim2(0, 4, 0, 4),
                    [](ops::Acc<double> u, ops::Acc<double> out) {
                      out(0, 0) = u(1, 1);
                    },
                    ops::arg(*h.u, *h.five, Access::kRead),
                    ops::arg(*h.unew,
                             Access::kWrite)),
      apl::Error);
  // A well-behaved kernel passes.
  EXPECT_NO_THROW(
      ops::par_loop(h.ctx, "good", *h.grid, ops::Range::dim2(0, 4, 0, 4),
                    [](ops::Acc<double> u, ops::Acc<double> out) {
                      out(0, 0) = u(1, 0) + u(0, -1);
                    },
                    ops::arg(*h.u, *h.five, Access::kRead),
                    ops::arg(*h.unew,
                             Access::kWrite)));
}

TEST(OpsParLoop, OneDimensionalLoop) {
  ops::Context ctx;
  ops::Block& line = ctx.decl_block(1, "line");
  auto& f = ctx.decl_dat<double>(line, 1, {10, 1, 1}, {1, 0, 0}, {1, 0, 0},
                                 "f");
  ops::Stencil& s3 =
      ctx.decl_stencil(1, {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}}, "3pt");
  ops::par_loop(ctx, "iota", line, ops::Range::dim1(-1, 11),
                [](ops::Acc<double> f, const int* idx) {
                  f(0) = idx[0];
                },
                ops::arg(f, Access::kWrite),
                ops::arg_idx());
  double sum = 0;
  ops::par_loop(ctx, "lap", line, ops::Range::dim1(0, 10),
                [](ops::Acc<double> f, double* s) {
                  s[0] += f(1) - 2 * f(0) + f(-1);
                },
                ops::arg(f, s3, Access::kRead),
                ops::arg_gbl(&sum, 1, Access::kInc));
  EXPECT_NEAR(sum, 0.0, 1e-12);  // second difference of a linear ramp
}

TEST(OpsParLoop, MultiComponentAccess) {
  ops::Context ctx;
  ops::Block& grid = ctx.decl_block(2, "grid");
  auto& v =
      ctx.decl_dat<double>(grid, 2, {4, 4, 1}, {1, 1, 0}, {1, 1, 0}, "v");
  ops::par_loop(ctx, "setv", grid, ops::Range::dim2(0, 4, 0, 4),
                [](ops::Acc<double> v, const int* idx) {
                  v.at(0, 0, 0) = idx[0];
                  v.at(1, 0, 0) = idx[1];
                },
                ops::arg(v, Access::kWrite),
                ops::arg_idx());
  EXPECT_DOUBLE_EQ(v.at(3, 2)[0], 3.0);
  EXPECT_DOUBLE_EQ(v.at(3, 2)[1], 2.0);
  // Neighbour component access through a stencil.
  ops::Stencil& right = ctx.decl_stencil(2, {{{0, 0, 0}}, {{1, 0, 0}}}, "r");
  double total = 0;
  ops::par_loop(ctx, "gatherv", grid, ops::Range::dim2(0, 3, 0, 4),
                [](ops::Acc<double> v, double* s) {
                  s[0] += v.at(0, 1, 0) - v.at(0, 0, 0);  // dx of comp 0
                },
                ops::arg(v, right, Access::kRead),
                ops::arg_gbl(&total, 1, Access::kInc));
  EXPECT_DOUBLE_EQ(total, 3 * 4);  // gradient 1 at 12 points
}

TEST(OpsParLoop, ProfileAccountsBytes) {
  HeatFixture h(8, 8);
  h.ctx.profile().clear();
  h.sweep();
  const auto& jac = h.ctx.profile().all().at("jacobi");
  EXPECT_EQ(jac.elements, 64u);
  // u read + unew written: 2 doubles per point.
  EXPECT_EQ(jac.bytes_direct, 64u * 2 * sizeof(double));
}

}  // namespace
