// Inter-block halos: a two-block channel must reproduce the single-block
// solution when the interface halos are exchanged each sweep, including a
// rotated-interface configuration exercising the direction mapping.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ops/ops.hpp"

namespace {

using ops::Access;
using ops::index_t;

/// 1D diffusion on one block of length 2n, vs two blocks of length n
/// coupled through explicit halos.
TEST(OpsHalo, TwoBlocksMatchOneBlock) {
  const index_t n = 12;
  ops::Context one;
  ops::Block& line1 = one.decl_block(1, "line");
  auto& u1 =
      one.decl_dat<double>(line1, 1, {2 * n, 1, 1}, {1, 0, 0}, {1, 0, 0}, "u");
  ops::Stencil& s3a =
      one.decl_stencil(1, {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}}, "3pt");
  auto& t1 =
      one.decl_dat<double>(line1, 1, {2 * n, 1, 1}, {1, 0, 0}, {1, 0, 0}, "t");

  ops::Context two;
  ops::Block& left = two.decl_block(1, "left");
  ops::Block& right = two.decl_block(1, "right");
  auto& ul = two.decl_dat<double>(left, 1, {n, 1, 1}, {1, 0, 0}, {1, 0, 0},
                                  "ul");
  auto& ur = two.decl_dat<double>(right, 1, {n, 1, 1}, {1, 0, 0}, {1, 0, 0},
                                  "ur");
  auto& tl = two.decl_dat<double>(left, 1, {n, 1, 1}, {1, 0, 0}, {1, 0, 0},
                                  "tl");
  auto& tr = two.decl_dat<double>(right, 1, {n, 1, 1}, {1, 0, 0}, {1, 0, 0},
                                  "tr");
  ops::Stencil& s3b =
      two.decl_stencil(1, {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}}, "3pt");

  // Initial condition: a bump near the interface.
  auto init = [](int i) { return std::exp(-0.1 * (i - 11) * (i - 11)); };
  for (index_t i = -1; i <= 2 * n; ++i) *u1.at(i) = init(i);
  for (index_t i = -1; i <= n; ++i) *ul.at(i) = init(i);
  for (index_t i = -1; i <= n; ++i) *ur.at(i) = init(n + i);

  // Interface halos: last interior point of `left` fills right's low halo,
  // first interior point of `right` fills left's high halo.
  ops::HaloGroup group;
  group.add(ops::Halo(ul, ur, {1, 1, 1}, {n - 1, 0, 0}, {-1, 0, 0},
                      {1, 2, 3}, {1, 2, 3}));
  group.add(ops::Halo(ur, ul, {1, 1, 1}, {0, 0, 0}, {n, 0, 0}, {1, 2, 3},
                      {1, 2, 3}));
  EXPECT_EQ(group.bytes(), 2 * sizeof(double));

  auto sweep1 = [&] {
    ops::par_loop(one, "diff", line1, ops::Range::dim1(0, 2 * n),
                  [](ops::Acc<double> u, ops::Acc<double> t) {
                    t(0) = u(0) + 0.2 * (u(1) - 2 * u(0) + u(-1));
                  },
                  ops::arg(u1, s3a, Access::kRead),
                  ops::arg(t1, Access::kWrite));
    ops::par_loop(one, "copy", line1, ops::Range::dim1(0, 2 * n),
                  [](ops::Acc<double> t, ops::Acc<double> u) { u(0) = t(0); },
                  ops::arg(t1, Access::kRead),
                  ops::arg(u1, Access::kWrite));
  };
  auto sweep2 = [&] {
    group.transfer();  // explicit synchronization point between blocks
    auto half = [&](ops::Block& blk, ops::Dat<double>& u,
                    ops::Dat<double>& t) {
      ops::par_loop(two, "diff", blk, ops::Range::dim1(0, n),
                    [](ops::Acc<double> u, ops::Acc<double> t) {
                      t(0) = u(0) + 0.2 * (u(1) - 2 * u(0) + u(-1));
                    },
                    ops::arg(u, s3b, Access::kRead),
                    ops::arg(t, Access::kWrite));
      ops::par_loop(two, "copy", blk, ops::Range::dim1(0, n),
                    [](ops::Acc<double> t, ops::Acc<double> u) {
                      u(0) = t(0);
                    },
                    ops::arg(t, Access::kRead),
                    ops::arg(u, Access::kWrite));
    };
    half(left, ul, tl);
    half(right, ur, tr);
  };

  for (int s = 0; s < 10; ++s) {
    sweep1();
    sweep2();
  }
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(*ul.at(i), *u1.at(i), 1e-14) << i;
    EXPECT_NEAR(*ur.at(i), *u1.at(n + i), 1e-14) << i;
  }
}

TEST(OpsHalo, ReversedDirectionMapping) {
  // Copy a row of block A into a row of block B walking backwards: the
  // to_dir entry -1 reverses the axis.
  ops::Context ctx;
  ops::Block& a = ctx.decl_block(1, "a");
  ops::Block& b = ctx.decl_block(1, "b");
  auto& da = ctx.decl_dat<double>(a, 1, {5, 1, 1}, {0, 0, 0}, {0, 0, 0}, "a");
  auto& db = ctx.decl_dat<double>(b, 1, {5, 1, 1}, {0, 0, 0}, {0, 0, 0}, "b");
  for (index_t i = 0; i < 5; ++i) *da.at(i) = i;
  ops::Halo h(da, db, {5, 1, 1}, {0, 0, 0}, {4, 0, 0}, {1, 2, 3},
              {-1, 2, 3});
  h.transfer();
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(*db.at(i), 4 - i) << i;
  }
}

TEST(OpsHalo, TransposedDirectionMapping) {
  // 2D: iteration dim 0 advances along B's axis 1 — a rotated interface.
  ops::Context ctx;
  ops::Block& a = ctx.decl_block(2, "a");
  ops::Block& b = ctx.decl_block(2, "b");
  auto& da =
      ctx.decl_dat<double>(a, 1, {3, 2, 1}, {0, 0, 0}, {0, 0, 0}, "a");
  auto& db =
      ctx.decl_dat<double>(b, 1, {2, 3, 1}, {0, 0, 0}, {0, 0, 0}, "b");
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 0; i < 3; ++i) *da.at(i, j) = 10 * i + j;
  }
  ops::Halo h(da, db, {3, 2, 1}, {0, 0, 0}, {0, 0, 0}, {1, 2, 3},
              {2, 1, 3});
  h.transfer();
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(*db.at(j, i), 10 * i + j) << i << "," << j;
    }
  }
}

TEST(OpsHalo, TypeMismatchRejected) {
  ops::Context ctx;
  ops::Block& a = ctx.decl_block(1, "a");
  auto& d1 = ctx.decl_dat<double>(a, 1, {4, 1, 1}, {0, 0, 0}, {0, 0, 0}, "1");
  auto& d2 = ctx.decl_dat<double>(a, 2, {4, 1, 1}, {0, 0, 0}, {0, 0, 0}, "2");
  EXPECT_THROW(ops::Halo(d1, d2, {1, 1, 1}, {0, 0, 0}, {0, 0, 0}, {1, 2, 3},
                         {1, 2, 3}),
               apl::Error);
}

}  // namespace
