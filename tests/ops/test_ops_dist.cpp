// Distributed OPS: block-decomposed execution must match the sequential
// backend, including boundary-condition loops that write into physical
// halos, global-index kernels, and reductions; halo traffic must scale
// with the cut perimeter.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "apl/io/ckpt.hpp"
#include "apl/profile.hpp"
#include "apl/testkit/fixtures.hpp"
#include "ops/ops.hpp"

namespace {

using ops::Access;
using ops::index_t;

// Block/stencil/field declarations come from the shared testkit fixture;
// this adds the one-sided boundary stencils the BC kernels need.
struct Diffusion : apl::testkit::HeatGrid {
  explicit Diffusion(index_t nx = 20, index_t ny = 14) : HeatGrid(nx, ny) {
    // One-sided stencils for the boundary kernels (real OPS applications
    // declare these so range validation can stay conservative).
    xp = &ctx.decl_stencil(2, {{{1, 0, 0}}}, "xp");
    xm = &ctx.decl_stencil(2, {{{-1, 0, 0}}}, "xm");
    yp = &ctx.decl_stencil(2, {{{0, 1, 0}}}, "yp");
    ym = &ctx.decl_stencil(2, {{{0, -1, 0}}}, "ym");
  }

  /// u := smooth initial field, everywhere including physical halos.
  template <class Exec>
  void init(Exec&& loop) {
    loop("init", ops::Range::dim2(-1, nx + 1, -1, ny + 1),
         [](ops::Acc<double> u, const int* idx) {
           u(0, 0) = std::sin(0.37 * idx[0]) * std::cos(0.23 * idx[1]);
         },
         ops::arg(*u, Access::kWrite), ops::arg_idx());
  }

  /// One explicit step with reflective boundaries written into the halo.
  template <class Exec>
  double step(Exec&& loop) {
    // Reflective BC: halo row/column copies the adjacent interior values.
    // Reads go through the stencil, the write through the centre point —
    // the same dat appears as two arguments, the standard OPS idiom for
    // update_halo-style kernels.
    loop("bc_x", ops::Range::dim2(-1, 0, 0, ny),
         [](ops::Acc<double> ur, ops::Acc<double> uw) { uw(0, 0) = ur(1, 0); },
         ops::arg(*u, *xp, Access::kRead),
         ops::arg(*u, Access::kWrite));
    loop("bc_x2", ops::Range::dim2(nx, nx + 1, 0, ny),
         [](ops::Acc<double> ur, ops::Acc<double> uw) {
           uw(0, 0) = ur(-1, 0);
         },
         ops::arg(*u, *xm, Access::kRead),
         ops::arg(*u, Access::kWrite));
    loop("bc_y", ops::Range::dim2(-1, nx + 1, -1, 0),
         [](ops::Acc<double> ur, ops::Acc<double> uw) { uw(0, 0) = ur(0, 1); },
         ops::arg(*u, *yp, Access::kRead),
         ops::arg(*u, Access::kWrite));
    loop("bc_y2", ops::Range::dim2(-1, nx + 1, ny, ny + 1),
         [](ops::Acc<double> ur, ops::Acc<double> uw) {
           uw(0, 0) = ur(0, -1);
         },
         ops::arg(*u, *ym, Access::kRead),
         ops::arg(*u, Access::kWrite));
    loop("diff", ops::Range::dim2(0, nx, 0, ny),
         [](ops::Acc<double> u, ops::Acc<double> t) {
           t(0, 0) = u(0, 0) + 0.2 * (u(1, 0) + u(-1, 0) + u(0, 1) +
                                      u(0, -1) - 4 * u(0, 0));
         },
         ops::arg(*u, *five, Access::kRead),
         ops::arg(*t, Access::kWrite));
    double sum = 0;
    loop("copy", ops::Range::dim2(0, nx, 0, ny),
         [](ops::Acc<double> t, ops::Acc<double> u, double* s) {
           u(0, 0) = t(0, 0);
           s[0] += t(0, 0);
         },
         ops::arg(*t, Access::kRead),
         ops::arg(*u, Access::kWrite),
         ops::arg_gbl(&sum, 1, Access::kInc));
    return sum;
  }

  std::vector<double> interior() const {
    std::vector<double> out;
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) out.push_back(*u->at(i, j));
    }
    return out;
  }

  ops::Stencil* xp;
  ops::Stencil* xm;
  ops::Stencil* yp;
  ops::Stencil* ym;
};

std::pair<std::vector<double>, double> run_seq(int steps) {
  Diffusion d;
  auto loop = [&](const char* name, const ops::Range& r, auto&& k,
                  auto... args) {
    ops::par_loop(d.ctx, name, *d.grid, r, k, args...);
  };
  d.init(loop);
  double last = 0;
  for (int s = 0; s < steps; ++s) last = d.step(loop);
  return {d.interior(), last};
}

std::pair<std::vector<double>, double> run_dist(
    int steps, int nranks, ops::Backend node_backend = ops::Backend::kSeq,
    std::uint64_t* halo_bytes = nullptr, ops::Distributed** out = nullptr) {
  Diffusion d;
  ops::Distributed dist(d.ctx, nranks);
  dist.set_node_backend(node_backend);
  auto loop = [&](const char* name, const ops::Range& r, auto&& k,
                  auto... args) {
    dist.par_loop(name, *d.grid, r, k, args...);
  };
  d.init(loop);
  double last = 0;
  for (int s = 0; s < steps; ++s) last = d.step(loop);
  dist.fetch(*d.u);
  if (halo_bytes) *halo_bytes = dist.comm().traffic().total_bytes();
  (void)out;
  return {d.interior(), last};
}

class OpsDist : public ::testing::TestWithParam<int> {};

TEST_P(OpsDist, MatchesSequential) {
  const auto [ref, sum_ref] = run_seq(6);
  const auto [got, sum] = run_dist(6, GetParam());
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-13) << i;
  }
  EXPECT_NEAR(sum, sum_ref, 1e-11 * (1 + std::abs(sum_ref)));
}

INSTANTIATE_TEST_SUITE_P(Ranks, OpsDist, ::testing::Values(1, 2, 3, 4, 6));

TEST(OpsDist, HybridThreadsMatches) {
  const auto [ref, sum_ref] = run_seq(4);
  const auto [got, sum] = run_dist(4, 4, ops::Backend::kThreads);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-13) << i;
  }
  EXPECT_NEAR(sum, sum_ref, 1e-11 * (1 + std::abs(sum_ref)));
}

TEST(OpsDist, SingleRankSendsNothing) {
  std::uint64_t bytes = ~0ull;
  run_dist(3, 1, ops::Backend::kSeq, &bytes);
  EXPECT_EQ(bytes, 0u);
}

TEST(OpsDist, HaloTrafficGrowsSublinearlyWithRanks) {
  std::uint64_t b2 = 0, b6 = 0;
  run_dist(4, 2, ops::Backend::kSeq, &b2);
  run_dist(4, 6, ops::Backend::kSeq, &b6);
  EXPECT_GT(b6, b2);
  EXPECT_LT(b6, b2 * 6);
}

TEST(OpsDist, ProcessGridIsNearSquare) {
  Diffusion d(24, 24);
  ops::Distributed dist(d.ctx, 6);
  const auto grid = dist.process_grid(*d.grid);
  EXPECT_EQ(grid[0] * grid[1], 6);
  EXPECT_GE(grid[0], 2);  // 2x3 or 3x2, not 1x6
}

TEST(OpsDist, HaloPointsMatchPerimeter) {
  Diffusion d(32, 32);
  ops::Distributed dist(d.ctx, 4);  // 2x2 grid
  const std::size_t pts = dist.halo_points(*d.u);
  // 2x2 decomposition of 32x32 with depth-1 halos: two 16-high cuts per
  // column pair (x strips) + full-width y strips including x halos.
  EXPECT_GT(pts, 100u);
  EXPECT_LT(pts, 400u);
}

TEST(OpsDist, OnDemandExchangeSkipsCleanDats) {
  Diffusion d;
  ops::Distributed dist(d.ctx, 4);
  auto loop = [&](const char* name, const ops::Range& r, auto&& k,
                  auto... args) {
    dist.par_loop(name, *d.grid, r, k, args...);
  };
  d.init(loop);
  const auto before = dist.comm().traffic().messages();
  // A zero-point-only loop must not trigger any exchange (the reduction
  // uses the allreduce path, not point-to-point messages).
  double sum = 0;
  dist.par_loop("sum", *d.grid, ops::Range::dim2(0, d.nx, 0, d.ny),
                [](ops::Acc<double> u, double* s) { s[0] += u(0, 0); },
                ops::arg(*d.u, Access::kRead),
                ops::arg_gbl(&sum, 1, Access::kInc));
  EXPECT_EQ(dist.comm().traffic().messages(), before);
}

// ---- profile surfacing ------------------------------------------------------

// Distributed traffic must land in the global Profile, not just the Comm
// ledger: halo bytes per loop, full byte/element accounting (so GB/s is
// nonzero on the dist path), and rollback-recovery traffic under the
// "<recover>" pseudo-loop — all visible in report() and to_json().
TEST(OpsDist, HaloAndRecoveryTrafficReachProfile) {
  Diffusion d;
  ops::Distributed dist(d.ctx, 4);
  auto loop = [&](const char* name, const ops::Range& r, auto&& k,
                  auto... args) {
    dist.par_loop(name, *d.grid, r, k, args...);
  };
  d.init(loop);
  for (int s = 0; s < 3; ++s) d.step(loop);

  apl::Profile& prof = d.ctx.profile();
  const apl::LoopStats& diff = prof.stats("diff");
  EXPECT_EQ(diff.calls, 3u);
  EXPECT_GT(diff.elements, 0u);
  EXPECT_GT(diff.bytes(), 0u) << "dist path must account loop traffic";
  EXPECT_GT(diff.seconds, 0.0);
  EXPECT_GT(diff.halo_bytes, 0u)
      << "the 5-point stencil on 4 ranks must exchange halos";

  const std::string base = ::testing::TempDir() + "ops_dist_recover.ckpt";
  apl::io::CheckpointStore store(base);
  store.remove_files();  // stale slots from an earlier run
  dist.checkpoint(store, 1);
  dist.recover(store);
  const apl::LoopStats& rec = prof.stats("<recover>");
  EXPECT_EQ(rec.calls, 1u);
  EXPECT_GT(rec.halo_bytes, 0u) << "recovery must record restored bytes";

  const std::string rep = prof.report();
  EXPECT_NE(rep.find("halo(MB)"), std::string::npos) << rep;
  EXPECT_NE(rep.find("<recover>"), std::string::npos) << rep;
  const std::string js = prof.to_json();
  EXPECT_NE(js.find("\"halo_bytes\": " + std::to_string(diff.halo_bytes)),
            std::string::npos);
  EXPECT_NE(js.find("<recover>"), std::string::npos);
  store.remove_files();
}

}  // namespace
