// OPS chain-schedule IR and cache: codec round trips, decode validation
// against the live chain (bit-flip robustness sweep included), plan_for
// memoization, the CloverLeaf warm-start differential (zero chain
// analysis, bitwise-identical results), and a testkit sweep with the
// cache enabled end to end.
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apl/io/plan_cache.hpp"
#include "apl/testkit/testkit.hpp"
#include "apl/trace.hpp"
#include "cloverleaf/cloverleaf_ops.hpp"
#include "ops/ops.hpp"

namespace {

using apl::plan_cache::Store;
using apl::trace::Recorder;
using cloverleaf::CloverOps;
using ops::Access;
using ops::ChainSchedule;
using ops::Range;

struct CacheDir {
  explicit CacheDir(const std::string& name)
      : dir((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(dir);
    Store::global().set_directory(dir);
  }
  ~CacheDir() {
    Store::global().set_directory("");
    std::filesystem::remove_all(dir);
  }
  std::string dir;
};

struct Heat2D : apl::testkit::HeatGrid {
  ops::index_t n;
  explicit Heat2D(ops::index_t size = 32) : HeatGrid(size, size), n(size) {}
};

ops::LoopRecord record_of(const ops::Block& blk, const Range& r,
                          std::vector<ops::ArgInfo> infos) {
  ops::LoopRecord rec;
  rec.name = "synthetic";
  rec.block = &blk;
  rec.range = r;
  rec.infos = std::move(infos);
  return rec;
}

/// A jacobi+copy style 2-loop chain with flow and anti dependences —
/// enough structure to produce a tiled segment with nonzero skews.
std::vector<ops::LoopRecord> sweep_chain(Heat2D& h) {
  const Range r = Range::dim2(0, h.n, 0, h.n);
  const ops::ArgInfo read_u{h.u->id(), h.five->id(), Access::kRead,
                            1, sizeof(double), false, false};
  const ops::ArgInfo write_t{h.t->id(), h.ctx.stencil_point(2).id(),
                             Access::kWrite, 1, sizeof(double), false, false};
  const ops::ArgInfo read_t{h.t->id(), h.ctx.stencil_point(2).id(),
                            Access::kRead, 1, sizeof(double), false, false};
  const ops::ArgInfo write_u{h.u->id(), h.ctx.stencil_point(2).id(),
                             Access::kWrite, 1, sizeof(double), false, false};
  std::vector<ops::LoopRecord> chain;
  chain.push_back(record_of(*h.grid, r, {read_u, write_t}));
  chain.push_back(record_of(*h.grid, r, {read_t, write_u}));
  return chain;
}

// ---- schedule IR codec ------------------------------------------------------

TEST(ChainSchedule, EncodeDecodeRoundTrip) {
  Heat2D h;
  const auto chain = sweep_chain(h);
  const ChainSchedule sched = ops::detail::analyze_chain(h.ctx, chain);
  ASSERT_FALSE(sched.ops.empty());

  const auto payload = ops::encode_schedule(sched);
  std::string diag;
  const auto back = ops::decode_schedule(payload, h.ctx, chain, &diag);
  ASSERT_TRUE(back.has_value()) << diag;
  EXPECT_EQ(back->groups, sched.groups);
  ASSERT_EQ(back->ops.size(), sched.ops.size());
  for (std::size_t i = 0; i < sched.ops.size(); ++i) {
    const ChainSchedule::Op& a = sched.ops[i];
    const ChainSchedule::Op& b = back->ops[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.dim, b.dim);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_EQ(a.h, b.h);
    EXPECT_EQ(a.tiles, b.tiles);
    EXPECT_EQ(a.tiled_bytes, b.tiled_bytes);
    EXPECT_EQ(a.skews, b.skews);
  }
}

TEST(ChainSchedule, DecodeRejectsWrongChainLength) {
  Heat2D h;
  auto chain = sweep_chain(h);
  const auto payload = ops::encode_schedule(
      ops::detail::analyze_chain(h.ctx, chain));
  chain.pop_back();
  std::string diag;
  EXPECT_FALSE(ops::decode_schedule(payload, h.ctx, chain, &diag));
  EXPECT_NE(diag.find("chain-ir:"), std::string::npos);
}

TEST(ChainSchedule, DecodeSurvivesSingleBitFlips) {
  // Robustness sweep: no single-bit corruption of the payload may crash
  // the decoder — each flip either still decodes (bit was in a stats
  // field) or rejects with a named diagnostic.
  Heat2D h(16);
  const auto chain = sweep_chain(h);
  const auto payload = ops::encode_schedule(
      ops::detail::analyze_chain(h.ctx, chain));
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    auto bad = payload;
    bad[i] ^= 0x40;
    std::string diag;
    const auto dec = ops::decode_schedule(bad, h.ctx, chain, &diag);
    if (!dec) {
      ++rejected;
      EXPECT_FALSE(diag.empty()) << "rejection without diagnostic at byte "
                                 << i;
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(ChainSchedule, PlanForMemoizesBySignature) {
  Heat2D h;
  const auto chain = sweep_chain(h);
  const ChainSchedule& s1 = h.ctx.plan_for({"sweep", &chain});
  const ChainSchedule& s2 = h.ctx.plan_for({"sweep", &chain});
  EXPECT_EQ(&s1, &s2);
  EXPECT_NE(s1.signature, 0u);

  // A config change (tile height) must produce a different schedule.
  h.ctx.set_tile_rows(8);
  const ChainSchedule& s3 = h.ctx.plan_for({"sweep", &chain});
  EXPECT_NE(&s3, &s1);
  EXPECT_NE(s3.signature, s1.signature);
}

// ---- CloverLeaf warm start --------------------------------------------------

cloverleaf::Options lazy_opts() {
  cloverleaf::Options o;
  o.nx = 24;
  o.ny = 24;
  o.lazy = true;
  return o;
}

std::vector<double> run_clover(int steps) {
  CloverOps app(lazy_opts());
  // Guarded kAccess forces eager chain flushes (snapshot/diff is
  // meaningless inside a fused chain), which would bypass the schedule
  // cache entirely; drop that one check if OPAL_VERIFY armed it.
  app.ctx().set_verify(app.ctx().verify_checks() & ~apl::verify::kAccess);
  app.run(steps);
  app.ctx().flush();
  return app.density();
}

TEST(ChainCacheWarm, WarmRunSkipsChainAnalysisAndMatchesCold) {
  CacheDir cache("ops_warm_cache");

  const std::vector<double> cold = run_clover(3);
  const auto cold_stats = Store::global().stats();
  ASSERT_GT(cold_stats.stores, 0u);

  Store::global().reset_stats();
  Recorder::global().clear();
  Recorder::global().set_enabled(true);
  const std::vector<double> warm = run_clover(3);
  Recorder::global().set_enabled(false);
  const auto evs = Recorder::global().snapshot();
  Recorder::global().clear();

  std::size_t analyzed = 0, hits = 0;
  for (const auto& e : evs) {
    if (e.name.rfind("chain_analyze", 0) == 0) ++analyzed;
    if (e.name.rfind("chain_hit", 0) == 0) ++hits;
  }
  EXPECT_EQ(analyzed, 0u) << "warm start re-analyzed a chain";
  EXPECT_GT(hits, 0u);

  const auto warm_stats = Store::global().stats();
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_EQ(warm_stats.corrupt, 0u);

  ASSERT_EQ(cold.size(), warm.size());
  EXPECT_EQ(std::memcmp(cold.data(), warm.data(),
                        cold.size() * sizeof(double)),
            0)
      << "warm start diverged from cold run";
}

TEST(ChainCacheWarm, CacheOffAndOnAgree) {
  // The cache must be invisible to results: the same lazy run with the
  // store disabled matches the cached runs bitwise.
  std::vector<double> plain;
  {
    Store::global().set_directory("");
    plain = run_clover(2);
  }
  CacheDir cache("ops_cache_vs_plain");
  const std::vector<double> cached = run_clover(2);
  ASSERT_EQ(plain.size(), cached.size());
  EXPECT_EQ(std::memcmp(plain.data(), cached.data(),
                        plain.size() * sizeof(double)),
            0);
}

// ---- testkit sweep with the cache enabled -----------------------------------

TEST(ChainCacheWarm, TestkitSweepCleanWithCacheEnabled) {
  CacheDir cache("testkit_cache_sweep");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const apl::testkit::FuzzReport rep = apl::testkit::fuzz_case(seed);
    EXPECT_TRUE(rep.ok) << rep.message;
  }
  // The sweep's own plans flowed through the store.
  const auto stats = Store::global().stats();
  EXPECT_GT(stats.stores + stats.hits, 0u);
}

}  // namespace
