// 3D OPS coverage: the abstraction supports 1D/2D/3D blocks (paper
// Sec. II-A); these tests exercise the third dimension through a 3D
// Jacobi sweep across backends.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ops/ops.hpp"

namespace {

using ops::Access;
using ops::index_t;

struct Heat3D {
  explicit Heat3D(index_t n = 10) : n(n) {
    grid = &ctx.decl_block(3, "grid3d");
    seven = &ctx.decl_stencil(3,
                              {{{0, 0, 0}},
                               {{1, 0, 0}},
                               {{-1, 0, 0}},
                               {{0, 1, 0}},
                               {{0, -1, 0}},
                               {{0, 0, 1}},
                               {{0, 0, -1}}},
                              "7pt");
    u = &ctx.decl_dat<double>(*grid, 1, {n, n, n}, {1, 1, 1}, {1, 1, 1},
                              "u");
    t = &ctx.decl_dat<double>(*grid, 1, {n, n, n}, {1, 1, 1}, {1, 1, 1},
                              "t");
    ops::par_loop(ctx, "init3d", *grid,
                  ops::Range::dim3(-1, n + 1, -1, n + 1, -1, n + 1),
                  [](ops::Acc<double> u, const int* idx) {
                    u(0, 0, 0) = std::sin(0.4 * idx[0]) +
                                 std::cos(0.3 * idx[1]) +
                                 std::sin(0.2 * idx[2]);
                  },
                  ops::arg(*u, Access::kWrite),
                  ops::arg_idx());
  }

  void sweep() {
    ops::par_loop(ctx, "jacobi3d", *grid, ops::Range::dim3(0, n, 0, n, 0, n),
                  [](ops::Acc<double> u, ops::Acc<double> t) {
                    t(0, 0, 0) = (u(1, 0, 0) + u(-1, 0, 0) + u(0, 1, 0) +
                                  u(0, -1, 0) + u(0, 0, 1) + u(0, 0, -1)) /
                                 6.0;
                  },
                  ops::arg(*u, *seven, Access::kRead),
                  ops::arg(*t, Access::kWrite));
    ops::par_loop(ctx, "copy3d", *grid, ops::Range::dim3(0, n, 0, n, 0, n),
                  [](ops::Acc<double> t, ops::Acc<double> u) {
                    u(0, 0, 0) = t(0, 0, 0);
                  },
                  ops::arg(*t, Access::kRead),
                  ops::arg(*u, Access::kWrite));
  }

  std::vector<double> interior() const {
    std::vector<double> out;
    for (index_t k = 0; k < n; ++k) {
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < n; ++i) out.push_back(*u->at(i, j, k));
      }
    }
    return out;
  }

  index_t n;
  ops::Context ctx;
  ops::Block* grid;
  ops::Stencil* seven;
  ops::Dat<double>* u;
  ops::Dat<double>* t;
};

TEST(Ops3D, AllocationAndAddressing) {
  Heat3D h(6);
  EXPECT_EQ(h.u->alloc_size()[2], 8);
  *h.u->at(2, 3, 4) = 42.0;
  EXPECT_EQ(*h.u->at(2, 3, 4), 42.0);
  *h.u->at(-1, -1, -1) = 7.0;  // halo corner addressable
  EXPECT_EQ(*h.u->at(-1, -1, -1), 7.0);
}

TEST(Ops3D, StencilReachesAllSixNeighbours) {
  Heat3D h(5);
  ops::par_loop(h.ctx, "zero", *h.grid,
                ops::Range::dim3(-1, 6, -1, 6, -1, 6),
                [](ops::Acc<double> u) { u(0, 0, 0) = 0.0; },
                ops::arg(*h.u, Access::kWrite));
  *h.u->at(2, 2, 2) = 6.0;
  h.sweep();
  EXPECT_DOUBLE_EQ(*h.u->at(1, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(*h.u->at(3, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(*h.u->at(2, 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(*h.u->at(2, 3, 2), 1.0);
  EXPECT_DOUBLE_EQ(*h.u->at(2, 2, 1), 1.0);
  EXPECT_DOUBLE_EQ(*h.u->at(2, 2, 3), 1.0);
  EXPECT_DOUBLE_EQ(*h.u->at(2, 2, 2), 0.0);
}

class Ops3DBackends : public ::testing::TestWithParam<ops::Backend> {};

TEST_P(Ops3DBackends, MatchesSeq) {
  Heat3D ref;
  for (int s = 0; s < 4; ++s) ref.sweep();
  Heat3D h;
  h.ctx.set_backend(GetParam());
  for (int s = 0; s < 4; ++s) h.sweep();
  const auto a = ref.interior();
  const auto b = h.interior();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Ops3DBackends,
                         ::testing::Values(ops::Backend::kSeq,
                                           ops::Backend::kThreads,
                                           ops::Backend::kCudaSim),
                         [](const auto& info) {
                           return ops::to_string(info.param);
                         });

TEST(Ops3D, ReductionOverVolume) {
  Heat3D h(8);
  double sum = 0, mx = -1e300;
  ops::par_loop(h.ctx, "reduce3d", *h.grid,
                ops::Range::dim3(0, 8, 0, 8, 0, 8),
                [](ops::Acc<double> u, double* s, double* m) {
                  s[0] += u(0, 0, 0);
                  m[0] = std::max(m[0], u(0, 0, 0));
                },
                ops::arg(*h.u, Access::kRead),
                ops::arg_gbl(&sum, 1, Access::kInc),
                ops::arg_gbl(&mx, 1, Access::kMax));
  double want = 0;
  for (double v : h.interior()) want += v;
  EXPECT_NEAR(sum, want, 1e-10 * (1 + std::abs(want)));
  EXPECT_LE(mx, 3.0);
}

TEST(Ops3D, StencilCheckerWorksIn3D) {
  Heat3D h(5);
  h.ctx.set_debug_checks(true);
  EXPECT_THROW(
      ops::par_loop(h.ctx, "evil3d", *h.grid,
                    ops::Range::dim3(0, 3, 0, 3, 0, 3),
                    [](ops::Acc<double> u, ops::Acc<double> t) {
                      t(0, 0, 0) = u(1, 1, 1);  // diagonal: undeclared
                    },
                    ops::arg(*h.u, *h.seven, Access::kRead),
                    ops::arg(*h.t, Access::kWrite)),
      apl::Error);
}

}  // namespace
