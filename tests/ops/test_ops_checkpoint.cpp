// OPS checkpointing: the Fig. 8 chain analysis on a structured loop chain,
// integration with the lazy loop-chain engine (request_checkpoint is a
// flush point; pending checkpoints force eager loop-entry values), and full
// crash/restart equivalence in both eager and lazy modes.
#include "ops/checkpoint.hpp"

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ops/dist.hpp"
#include "ops/ops.hpp"

namespace {

using ops::Access;
using ops::index_t;

std::string temp_base(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// A miniature structured step with the shapes the analysis must see: a
// never-modified dat (x), a first-whole-written dat (b), a stencil-read
// chain and a global reduction — the structured analogue of MiniAirfoil.
struct MiniStep {
  explicit MiniStep(index_t nx = 8, index_t ny = 6) : nx(nx), ny(ny) {
    grid = &ctx.decl_block(2, "grid");
    five = &ctx.decl_stencil(
        2,
        {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}, {{0, 1, 0}}, {{0, -1, 0}}},
        "5pt");
    x = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                              "x");
    a = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                              "a");
    b = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                              "b");
    c = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                              "c");
    // Initialized before any checkpointer attaches (like mesh loading).
    ops::par_loop(ctx, "init", *grid,
                  ops::Range::dim2(-1, nx + 1, -1, ny + 1),
                  [](ops::Acc<double> x, ops::Acc<double> a,
                     ops::Acc<double> b, ops::Acc<double> c, const int* idx) {
                    x(0, 0) = 0.05 * idx[0] - 0.03 * idx[1];
                    a(0, 0) = std::sin(0.3 * idx[0]) + std::cos(0.2 * idx[1]);
                    b(0, 0) = 0.0;
                    c(0, 0) = 0.0;
                  },
                  ops::arg(*x, Access::kWrite), ops::arg(*a, Access::kWrite),
                  ops::arg(*b, Access::kWrite), ops::arg(*c, Access::kWrite),
                  ops::arg_idx());
  }

  void copy() {
    ops::par_loop(ctx, "copy", *grid, ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> a, ops::Acc<double> b) {
                    b(0, 0) = a(0, 0);
                  },
                  ops::arg(*a, Access::kRead), ops::arg(*b, Access::kWrite));
  }
  void diffuse() {
    ops::par_loop(ctx, "diffuse", *grid, ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> b, ops::Acc<double> x,
                     ops::Acc<double> c) {
                    c(0, 0) = 0.25 * (b(1, 0) + b(-1, 0) + b(0, 1) +
                                      b(0, -1)) +
                              0.01 * x(0, 0);
                  },
                  ops::arg(*b, *five, Access::kRead),
                  ops::arg(*x, Access::kRead),
                  ops::arg(*c, Access::kWrite));
  }
  void update() {
    ops::par_loop(ctx, "update", *grid, ops::Range::dim2(0, nx, 0, ny),
                  [](ops::Acc<double> a, ops::Acc<double> c, double* rms) {
                    a(0, 0) += 0.1 * c(0, 0);
                    rms[0] += c(0, 0) * c(0, 0);
                  },
                  ops::arg(*a, Access::kRW), ops::arg(*c, Access::kRead),
                  ops::arg_gbl(&rms, 1, Access::kInc));
  }
  void step() {
    copy();
    diffuse();
    update();
  }

  std::vector<double> state() {
    auto out = a->to_vector();
    out.push_back(rms);
    return out;
  }

  index_t nx, ny;
  ops::Context ctx;
  ops::Block* grid;
  ops::Stencil* five;
  ops::Dat<double>* x;
  ops::Dat<double>* a;
  ops::Dat<double>* b;
  ops::Dat<double>* c;
  double rms = 0.0;
};

std::vector<double> reference_run(int steps, bool lazy) {
  MiniStep app;
  app.ctx.set_lazy(lazy);
  for (int s = 0; s < steps; ++s) app.step();
  app.ctx.flush();
  return app.state();
}

TEST(OpsCheckpointAnalysis, PeriodAndNeverModified) {
  MiniStep app;
  ops::Checkpointer ck(app.ctx, temp_base("ops_chain"));
  for (int s = 0; s < 3; ++s) app.step();
  EXPECT_EQ(ck.detect_period(), 3);
  EXPECT_EQ(ck.chain().size(), 9u);
  for (index_t pos = 0; pos < 6; ++pos) {
    for (index_t d : ck.datasets_saved_at(pos)) {
      EXPECT_NE(app.ctx.dat(d).name(), "x") << "pos " << pos;
    }
  }
  ck.store().remove_files();
}

TEST(OpsCheckpointAnalysis, FirstWholeWrittenDatsAreDropped) {
  MiniStep app;
  ops::Checkpointer ck(app.ctx, temp_base("ops_chain2"));
  for (int s = 0; s < 3; ++s) app.step();
  // Entering at "copy" (steady state, pos 3): b and c are overwritten
  // before being read, so only the live state (a) needs saving.
  std::vector<std::string> names;
  for (index_t d : ck.datasets_saved_at(3)) {
    names.push_back(app.ctx.dat(d).name());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"a"}));
  ck.store().remove_files();
}

TEST(OpsCheckpointRestart, EagerRestartReproducesUninterruptedRun) {
  const std::string base = temp_base("ops_restart_eager");
  const int total = 8;
  const auto reference = reference_run(total, /*lazy=*/false);

  {
    MiniStep app;
    ops::Checkpointer ck(app.ctx, base);
    for (int s = 0; s < 4; ++s) app.step();
    ck.request_checkpoint();
    app.step();
    app.step();
    ASSERT_TRUE(ck.checkpoint_complete());
    // crash
  }
  {
    MiniStep app;
    ops::Checkpointer ck = ops::Checkpointer::restore(app.ctx, base);
    for (int s = 0; s < total; ++s) app.step();
    EXPECT_FALSE(ck.replaying());
    const auto out = app.state();
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i], reference[i]) << "index " << i;
    }
    ck.store().remove_files();
  }
}

TEST(OpsCheckpointRestart, LazyRestartReproducesUninterruptedRun) {
  const std::string base = temp_base("ops_restart_lazy");
  const int total = 8;
  const auto reference = reference_run(total, /*lazy=*/true);

  {
    MiniStep app;
    app.ctx.set_lazy(true);
    ops::Checkpointer ck(app.ctx, base);
    for (int s = 0; s < 4; ++s) app.step();
    ck.request_checkpoint();  // a flush point: the queued chain runs first
    EXPECT_EQ(app.ctx.chain_length(), 0u);
    app.step();
    app.step();
    app.ctx.flush();
    ASSERT_TRUE(ck.checkpoint_complete());
  }
  {
    MiniStep app;
    app.ctx.set_lazy(true);
    ops::Checkpointer ck = ops::Checkpointer::restore(app.ctx, base);
    for (int s = 0; s < total; ++s) app.step();
    app.ctx.flush();
    EXPECT_FALSE(ck.replaying());
    const auto out = app.state();
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i], reference[i]) << "index " << i;
    }
    ck.store().remove_files();
  }
}

TEST(OpsCheckpointRestart, ReplayRestoresGlobalReductions) {
  const std::string base = temp_base("ops_restart_gbl");
  double rms_marker = 0.0;
  {
    MiniStep app;
    ops::Checkpointer ck(app.ctx, base);
    for (int s = 0; s < 3; ++s) app.step();
    ck.request_checkpoint();
    app.step();
    app.step();
    ASSERT_TRUE(ck.checkpoint_complete());
    rms_marker = app.rms;
  }
  {
    MiniStep app;
    ops::Checkpointer ck = ops::Checkpointer::restore(app.ctx, base);
    for (int s = 0; s < 5; ++s) app.step();
    EXPECT_DOUBLE_EQ(app.rms, rms_marker);
    ck.store().remove_files();
  }
}

TEST(OpsCheckpointRestart, DivergentReplaySequenceFails) {
  const std::string base = temp_base("ops_restart_diverge");
  {
    MiniStep app;
    ops::Checkpointer ck(app.ctx, base);
    for (int s = 0; s < 3; ++s) app.step();
    ck.request_checkpoint();
    app.step();
    app.step();
    ASSERT_TRUE(ck.checkpoint_complete());
  }
  {
    MiniStep app;
    ops::Checkpointer ck = ops::Checkpointer::restore(app.ctx, base);
    EXPECT_THROW(app.update(), apl::Error);  // recorded chain starts at copy
    ck.store().remove_files();
  }
}

}  // namespace
