// Lazy loop-chain engine tests: flush points (reduction read, raw data
// access, explicit flush, halo transfer), dependency-analysis skews, and
// bit-equivalence of tiled execution against eager execution.
#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "apl/testkit/fixtures.hpp"
#include "ops/ops.hpp"

namespace {

using ops::Access;
using ops::Range;

// Declarations come from the shared testkit fixture; `unew` keeps this
// file's historical name for t, `n` the square extent.
struct Heat2D : apl::testkit::HeatGrid {
  ops::Dat<double>* unew = nullptr;
  ops::index_t n;

  explicit Heat2D(ops::index_t size = 32) : HeatGrid(size, size), n(size) {
    unew = t;
    // Guarded kAccess deliberately bypasses the lazy engine (the whole-dat
    // snapshot/diff is meaningless inside a fused chain). These tests
    // assert chain internals, so drop that one check if OPAL_VERIFY armed
    // it; every other guard stays on.
    ctx.set_verify(ctx.verify_checks() & ~apl::verify::kAccess);
  }

  void init() {
    ops::par_loop(ctx, "init", *grid, Range::dim2(-1, n + 1, -1, n + 1),
                  [](ops::Acc<double> u, const int* idx) {
                    u(0, 0) = idx[0] < 0 ? 1.0 : 0.1 * idx[1];
                  },
                  ops::arg(*u, Access::kWrite), ops::arg_idx());
  }

  /// One Jacobi sweep + copy-back: a 2-loop chain with a flow dependence
  /// (jacobi writes unew, copy reads it) and an anti dependence (jacobi
  /// reads u at +-1, copy overwrites u).
  void sweep() {
    ops::par_loop(ctx, "jacobi", *grid, Range::dim2(0, n, 0, n),
                  [](ops::Acc<double> u, ops::Acc<double> out) {
                    out(0, 0) =
                        0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) + u(0, -1));
                  },
                  ops::arg(*u, *five, Access::kRead),
                  ops::arg(*unew, Access::kWrite));
    ops::par_loop(ctx, "copy", *grid, Range::dim2(0, n, 0, n),
                  [](ops::Acc<double> out, ops::Acc<double> u) {
                    u(0, 0) = out(0, 0);
                  },
                  ops::arg(*unew, Access::kRead),
                  ops::arg(*u, Access::kWrite));
  }
};

// ---- flush points -----------------------------------------------------------

TEST(OpsLazy, LoopsQueueUntilFlush) {
  Heat2D h;
  h.ctx.set_lazy(true);
  h.init();
  h.sweep();
  EXPECT_EQ(h.ctx.chain_length(), 3u);  // nothing has executed yet
  h.ctx.flush();
  EXPECT_EQ(h.ctx.chain_length(), 0u);
  EXPECT_EQ(h.ctx.chain_stats().loops, 3u);
  EXPECT_EQ(h.ctx.chain_stats().max_chain, 3u);
}

TEST(OpsLazy, ReductionReadFlushes) {
  Heat2D h;
  h.ctx.set_lazy(true);
  h.init();
  double sum = 0.0;
  ops::par_loop(h.ctx, "sum", *h.grid, Range::dim2(0, h.n, 0, h.n),
                [](ops::Acc<double> u, double* s) { s[0] += u(0, 0); },
                ops::arg(*h.u, Access::kRead),
                ops::arg_gbl(&sum, 1, Access::kInc));
  // The chain — init included — must have run before par_loop returned,
  // so the reduction value is complete here.
  EXPECT_EQ(h.ctx.chain_length(), 0u);
  Heat2D eager;
  eager.init();
  double want = 0.0;
  ops::par_loop(eager.ctx, "sum", *eager.grid,
                Range::dim2(0, eager.n, 0, eager.n),
                [](ops::Acc<double> u, double* s) { s[0] += u(0, 0); },
                ops::arg(*eager.u, Access::kRead),
                ops::arg_gbl(&want, 1, Access::kInc));
  EXPECT_EQ(sum, want);
}

TEST(OpsLazy, RawAccessFlushes) {
  Heat2D h;
  h.ctx.set_lazy(true);
  h.init();
  h.sweep();
  ASSERT_GT(h.ctx.chain_length(), 0u);
  // Reading through at() is a flush point: the queued chain executes
  // first and the value matches eager execution.
  Heat2D eager;
  eager.init();
  eager.sweep();
  EXPECT_EQ(*h.u->at(3, 4), *eager.u->at(3, 4));
  EXPECT_EQ(h.ctx.chain_length(), 0u);
}

TEST(OpsLazy, ToVectorFlushes) {
  Heat2D h;
  h.ctx.set_lazy(true);
  h.init();
  ASSERT_EQ(h.ctx.chain_length(), 1u);
  const std::vector<double> v = h.u->to_vector();
  EXPECT_EQ(h.ctx.chain_length(), 0u);
  Heat2D eager;
  eager.init();
  EXPECT_EQ(v, eager.u->to_vector());
}

TEST(OpsLazy, TurningLazyOffFlushes) {
  Heat2D h;
  h.ctx.set_lazy(true);
  h.init();
  ASSERT_EQ(h.ctx.chain_length(), 1u);
  h.ctx.set_lazy(false);
  EXPECT_EQ(h.ctx.chain_length(), 0u);
}

TEST(OpsLazy, FrozenGblReadUsesEnqueueTimeValue) {
  Heat2D h;
  h.ctx.set_lazy(true);
  double scale = 3.0;  // stack value read by the queued loop
  ops::par_loop(h.ctx, "fill", *h.grid, Range::dim2(0, h.n, 0, h.n),
                [](ops::Acc<double> u, const double* s) { u(0, 0) = s[0]; },
                ops::arg(*h.u, Access::kWrite),
                ops::arg_gbl(&scale, 1, Access::kRead));
  scale = -1.0;  // mutated after enqueue; the loop must see 3.0
  h.ctx.flush();
  EXPECT_EQ(*h.u->at(0, 0), 3.0);
}

// ---- dependency analysis ----------------------------------------------------

ops::LoopRecord record_of(const ops::Block& blk, const Range& r,
                          std::vector<ops::ArgInfo> infos) {
  ops::LoopRecord rec;
  rec.name = "synthetic";
  rec.block = &blk;
  rec.range = r;
  rec.infos = std::move(infos);
  return rec;
}

TEST(OpsLazy, FlowDependenceSkewsWriterAhead) {
  Heat2D h;
  ops::Stencil& up2 = h.ctx.decl_stencil(
      2, {{{0, 0, 0}}, {{0, 2, 0}}}, "up2");
  const Range r = Range::dim2(0, h.n, 0, h.n);
  const ops::ArgInfo write_u{h.u->id(), h.ctx.stencil_point(2).id(),
                             Access::kWrite, 1, sizeof(double), false, false};
  const ops::ArgInfo read_u{h.u->id(), up2.id(), Access::kRead,
                            1, sizeof(double), false, false};
  std::vector<ops::LoopRecord> chain;
  chain.push_back(record_of(*h.grid, r, {write_u}));
  chain.push_back(record_of(*h.grid, r, {read_u}));
  const auto skews = ops::compute_skews(h.ctx, chain, 1);
  // The reader reaches +2 rows ahead of its centre: by the time the
  // reader's tile rows run, the writer must already have produced those
  // rows — the writer's skew leads by at least 2.
  ASSERT_EQ(skews.size(), 2u);
  EXPECT_GE(skews[0] - skews[1], 2);
}

TEST(OpsLazy, AntiDependenceSkewsReaderAhead) {
  Heat2D h;
  ops::Stencil& down2 = h.ctx.decl_stencil(
      2, {{{0, 0, 0}}, {{0, -2, 0}}}, "down2");
  const Range r = Range::dim2(0, h.n, 0, h.n);
  const ops::ArgInfo read_u{h.u->id(), down2.id(), Access::kRead,
                            1, sizeof(double), false, false};
  const ops::ArgInfo write_u{h.u->id(), h.ctx.stencil_point(2).id(),
                             Access::kWrite, 1, sizeof(double), false, false};
  std::vector<ops::LoopRecord> chain;
  chain.push_back(record_of(*h.grid, r, {read_u}));
  chain.push_back(record_of(*h.grid, r, {write_u}));
  const auto skews = ops::compute_skews(h.ctx, chain, 1);
  // The reader looks 2 rows behind its centre into values the later
  // writer overwrites: the reader's skew must lead by at least 2 so it
  // consumes the old values before they are clobbered.
  ASSERT_EQ(skews.size(), 2u);
  EXPECT_GE(skews[0] - skews[1], 2);
}

TEST(OpsLazy, IndependentLoopsNeedNoSkew) {
  Heat2D h;
  const Range r = Range::dim2(0, h.n, 0, h.n);
  const ops::ArgInfo write_u{h.u->id(), h.ctx.stencil_point(2).id(),
                             Access::kWrite, 1, sizeof(double), false, false};
  const ops::ArgInfo write_v{h.unew->id(), h.ctx.stencil_point(2).id(),
                             Access::kWrite, 1, sizeof(double), false, false};
  std::vector<ops::LoopRecord> chain;
  chain.push_back(record_of(*h.grid, r, {write_u}));
  chain.push_back(record_of(*h.grid, r, {write_v}));
  const auto skews = ops::compute_skews(h.ctx, chain, 1);
  EXPECT_EQ(skews[0], skews[1]);
}

// ---- tiled execution equivalence -------------------------------------------

std::vector<double> run_sweeps(bool lazy, bool tiling, ops::index_t tile_rows,
                               int sweeps) {
  Heat2D h;
  if (lazy) {
    h.ctx.set_lazy(true);
    h.ctx.set_tiling(tiling);
    h.ctx.set_tile_rows(tile_rows);
  }
  h.init();
  for (int s = 0; s < sweeps; ++s) h.sweep();
  return h.u->to_vector();  // flush point
}

TEST(OpsLazy, TiledChainBitIdenticalToEager) {
  const auto eager = run_sweeps(false, false, 0, 5);
  // RAW pairs (jacobi -> copy) must never be reordered across tile
  // boundaries: with 2-row tiles every dependence crosses tiles many
  // times, and the result must still be bit-identical.
  EXPECT_EQ(run_sweeps(true, true, 2, 5), eager);
  EXPECT_EQ(run_sweeps(true, true, 7, 5), eager);   // non-divising height
  EXPECT_EQ(run_sweeps(true, true, 0, 5), eager);   // auto height
  EXPECT_EQ(run_sweeps(true, false, 0, 5), eager);  // verbatim replay
}

TEST(OpsLazy, TilingReportsTrafficSavings) {
  Heat2D h(256);
  h.ctx.set_lazy(true);
  h.ctx.set_tile_rows(16);
  h.init();
  for (int s = 0; s < 4; ++s) h.sweep();
  h.ctx.flush();
  const ops::ChainStats& st = h.ctx.chain_stats();
  EXPECT_GT(st.tiles, st.loops);  // genuinely tiled
  // A 9-loop chain over two dats re-uses each tile's working set across
  // loops, so the tiled traffic model must come in under streaming.
  EXPECT_LT(st.tiled_bytes, st.eager_bytes);
  EXPECT_GT(st.traffic_saved_fraction(), 0.2);
}

}  // namespace
