#include <gtest/gtest.h>

#include "apl/error.hpp"
#include "ops/ops.hpp"

namespace {

using ops::index_t;

TEST(OpsCore, BlockDeclaration) {
  ops::Context ctx;
  ops::Block& b = ctx.decl_block(2, "grid");
  EXPECT_EQ(b.ndim(), 2);
  EXPECT_EQ(&ctx.block(b.id()), &b);
  EXPECT_THROW(ctx.decl_block(0, "bad"), apl::Error);
  EXPECT_THROW(ctx.decl_block(4, "bad"), apl::Error);
}

TEST(OpsCore, StencilExtents) {
  ops::Context ctx;
  ops::Stencil& s = ctx.decl_stencil(
      2, {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}, {{0, -2, 0}}}, "odd");
  EXPECT_EQ(s.lo()[0], -1);
  EXPECT_EQ(s.hi()[0], 1);
  EXPECT_EQ(s.lo()[1], -2);
  EXPECT_EQ(s.hi()[1], 0);
  EXPECT_TRUE(s.contains(1, 0, 0));
  EXPECT_FALSE(s.contains(1, 1, 0));
  EXPECT_FALSE(s.is_zero_point());
  EXPECT_TRUE(ctx.stencil_point(2).is_zero_point());
}

TEST(OpsCore, StencilRejectsOffsetInUnusedDim) {
  ops::Context ctx;
  EXPECT_THROW(ctx.decl_stencil(1, {{{0, 1, 0}}}, "bad"), apl::Error);
}

TEST(OpsCore, DatAllocationWithHalos) {
  ops::Context ctx;
  ops::Block& b = ctx.decl_block(2, "grid");
  auto& d = ctx.decl_dat<double>(b, 1, {10, 6, 1}, {2, 2, 0}, {2, 2, 0}, "f");
  EXPECT_EQ(d.alloc_size()[0], 14);
  EXPECT_EQ(d.alloc_size()[1], 10);
  EXPECT_EQ(d.alloc_points(), 14u * 10u);
  // Interior (0,0) is offset (2,2) into the allocation.
  EXPECT_EQ(d.offset_of(0, 0, 0), 2 + 2 * 14);
  // Halo points are addressable.
  *d.at(-2, -2) = 7.0;
  EXPECT_EQ(d.storage()[0], 7.0);
  *d.at(11, 7) = 8.0;  // top-right halo corner
  EXPECT_EQ(d.storage()[14 * 10 - 1], 8.0);
}

TEST(OpsCore, MultiComponentDat) {
  ops::Context ctx;
  ops::Block& b = ctx.decl_block(1, "line");
  auto& d = ctx.decl_dat<double>(b, 3, {5, 1, 1}, {0, 0, 0}, {0, 0, 0}, "v");
  d.at(2)[0] = 1.0;
  d.at(2)[1] = 2.0;
  d.at(2)[2] = 3.0;
  double buf[3];
  d.pack_point(2, 0, 0, buf);
  EXPECT_EQ(buf[1], 2.0);
  const double repl[3] = {9, 8, 7};
  d.unpack_point(2, 0, 0, repl);
  EXPECT_EQ(d.at(2)[2], 7.0);
}

TEST(OpsCore, DatValidatesUnusedDims) {
  ops::Context ctx;
  ops::Block& b = ctx.decl_block(1, "line");
  EXPECT_THROW(
      ctx.decl_dat<double>(b, 1, {5, 3, 1}, {0, 0, 0}, {0, 0, 0}, "bad"),
      apl::Error);
}

TEST(OpsCore, RangeHelpers) {
  const auto r = ops::Range::dim2(0, 10, 2, 5);
  EXPECT_EQ(r.points(), 30u);
  EXPECT_FALSE(r.empty());
  const auto i = r.intersect(ops::Range::dim2(5, 20, 0, 3));
  EXPECT_EQ(i.lo[0], 5);
  EXPECT_EQ(i.hi[0], 10);
  EXPECT_EQ(i.points(), 5u);
  EXPECT_TRUE(r.intersect(ops::Range::dim2(10, 12, 0, 1)).empty());
}

TEST(OpsCore, WriteThroughNonCentreStencilRejected) {
  ops::Context ctx;
  ops::Block& b = ctx.decl_block(2, "grid");
  auto& d = ctx.decl_dat<double>(b, 1, {4, 4, 1}, {1, 1, 0}, {1, 1, 0}, "f");
  ops::Stencil& wide =
      ctx.decl_stencil(2, {{{0, 0, 0}}, {{1, 0, 0}}}, "wide");
  EXPECT_THROW(ops::arg(d, wide, ops::Access::kWrite), apl::Error);
  EXPECT_NO_THROW(ops::arg(d, wide, ops::Access::kRead));
  EXPECT_NO_THROW(ops::arg(d, ctx.stencil_point(2), ops::Access::kWrite));
}

TEST(OpsCore, RangeValidationAgainstAllocation) {
  ops::Context ctx;
  ops::Block& b = ctx.decl_block(2, "grid");
  auto& d = ctx.decl_dat<double>(b, 1, {8, 8, 1}, {1, 1, 0}, {1, 1, 0}, "f");
  ops::Stencil& five = ctx.decl_stencil(
      2, {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}, {{0, 1, 0}}, {{0, -1, 0}}},
      "5pt");
  auto kernel = [](ops::Acc<double>) {};
  // Interior range with 1-deep stencil: fine.
  EXPECT_NO_THROW(ops::par_loop(ctx, "ok", b, ops::Range::dim2(0, 8, 0, 8),
                                kernel, ops::arg(d, five, ops::Access::kRead)));
  // Range into the halo + stencil: leaves the allocation.
  EXPECT_THROW(ops::par_loop(ctx, "bad", b, ops::Range::dim2(-1, 9, 0, 8),
                             kernel, ops::arg(d, five, ops::Access::kRead)),
               apl::Error);
}

TEST(OpsCore, FindDatByName) {
  ops::Context ctx;
  ops::Block& b = ctx.decl_block(1, "line");
  ctx.decl_dat<double>(b, 1, {3, 1, 1}, {0, 0, 0}, {0, 0, 0}, "rho");
  EXPECT_NE(ctx.find_dat("rho"), nullptr);
  EXPECT_EQ(ctx.find_dat("nope"), nullptr);
}

}  // namespace
