#include "apl/simdev/device.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace {

using apl::simdev::DeviceConfig;
using apl::simdev::TransactionCounter;

std::vector<std::uintptr_t> lane_addrs(int lanes, std::uintptr_t base,
                                       std::uintptr_t stride) {
  std::vector<std::uintptr_t> a(lanes);
  for (int i = 0; i < lanes; ++i) a[i] = base + stride * i;
  return a;
}

TEST(TransactionCounter, PerfectlyCoalescedWarp) {
  // 32 lanes reading consecutive doubles: 32*8 = 256 bytes = 2 segments.
  TransactionCounter tc(DeviceConfig{});
  tc.warp_access(lane_addrs(32, 0, 8), 8, false);
  EXPECT_EQ(tc.transactions(), 2u);
  EXPECT_DOUBLE_EQ(tc.efficiency(), 1.0);
}

TEST(TransactionCounter, AosStrideDoublesTransactions) {
  // AoS with 4 components (stride 32 bytes): lanes span 32*32 = 1024 bytes
  // = 8 segments, but only 256 useful bytes -> 25% efficiency.
  TransactionCounter tc(DeviceConfig{});
  tc.warp_access(lane_addrs(32, 0, 32), 8, false);
  EXPECT_EQ(tc.transactions(), 8u);
  EXPECT_DOUBLE_EQ(tc.efficiency(), 0.25);
}

TEST(TransactionCounter, FullyScatteredWarp) {
  // Each lane in its own segment: 32 transactions.
  TransactionCounter tc(DeviceConfig{});
  tc.warp_access(lane_addrs(32, 0, 4096), 8, false);
  EXPECT_EQ(tc.transactions(), 32u);
  EXPECT_LT(tc.efficiency(), 0.07);
}

TEST(TransactionCounter, DuplicateAddressesCoalesce) {
  // All lanes reading the same element: one transaction (broadcast).
  TransactionCounter tc(DeviceConfig{});
  tc.warp_access(lane_addrs(32, 64, 0), 8, false);
  EXPECT_EQ(tc.transactions(), 1u);
}

TEST(TransactionCounter, UnalignedAccessStraddlesSegments) {
  // One lane reading 8 bytes at offset 124 crosses a 128B boundary.
  TransactionCounter tc(DeviceConfig{});
  const std::vector<std::uintptr_t> addrs = {124};
  tc.warp_access(addrs, 8, false);
  EXPECT_EQ(tc.transactions(), 2u);
}

TEST(TransactionCounter, WritesTrackedSeparately) {
  TransactionCounter tc(DeviceConfig{});
  tc.warp_access(lane_addrs(32, 0, 8), 8, true);
  tc.warp_access(lane_addrs(32, 4096, 8), 8, false);
  EXPECT_EQ(tc.write_transactions(), 2u);
  EXPECT_EQ(tc.transactions(), 4u);
}

TEST(TransactionCounter, EmptyAccessIsNoop) {
  TransactionCounter tc(DeviceConfig{});
  tc.warp_access({}, 8, false);
  tc.warp_access(lane_addrs(4, 0, 8), 0, false);
  EXPECT_EQ(tc.transactions(), 0u);
  EXPECT_DOUBLE_EQ(tc.efficiency(), 1.0);
}

TEST(TransactionCounter, ResetClears) {
  TransactionCounter tc(DeviceConfig{});
  tc.warp_access(lane_addrs(32, 0, 8), 8, true);
  tc.reset();
  EXPECT_EQ(tc.transactions(), 0u);
  EXPECT_EQ(tc.write_transactions(), 0u);
  EXPECT_EQ(tc.useful_bytes(), 0u);
}

TEST(TransactionCounter, SoAvsAoSRatioMatchesComponentCount) {
  // The Fig. 7 effect in isolation: a 4-component dat accessed one
  // component at a time is 4x cheaper in SoA than AoS layout.
  DeviceConfig cfg;
  TransactionCounter soa(cfg), aos(cfg);
  for (int comp = 0; comp < 4; ++comp) {
    // SoA: component arrays are contiguous (stride 8 within a warp);
    // arrays are segment-aligned as the aligned allocator guarantees.
    soa.warp_access(lane_addrs(32, 131072 * comp, 8), 8, false);
    // AoS: stride is 4 components * 8 bytes.
    aos.warp_access(lane_addrs(32, 8 * comp, 32), 8, false);
  }
  EXPECT_EQ(aos.transactions(), 4 * soa.transactions());
}

}  // namespace
