#include "apl/graph/coloring.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "apl/graph/csr.hpp"
#include "apl/rng.hpp"

namespace {

using apl::graph::Coloring;
using apl::graph::index_t;

TEST(Coloring, GreedyColorTriangleNeedsThree) {
  apl::graph::Csr g;
  g.offsets = {0, 2, 4, 6};
  g.adj = {1, 2, 0, 2, 0, 1};
  const Coloring c = apl::graph::greedy_color(g);
  EXPECT_EQ(c.num_colors, 3);
  EXPECT_NE(c.color[0], c.color[1]);
  EXPECT_NE(c.color[1], c.color[2]);
  EXPECT_NE(c.color[0], c.color[2]);
}

TEST(Coloring, GreedyColorIndependentVerticesShareColor) {
  apl::graph::Csr g;
  g.offsets = {0, 0, 0, 0};
  const Coloring c = apl::graph::greedy_color(g);
  EXPECT_EQ(c.num_colors, 1);
}

TEST(Coloring, SharedResourceRingIsValid) {
  // Edges of a ring of 6 vertices; adjacent edges share a vertex.
  const index_t n = 6;
  std::vector<index_t> map;
  for (index_t e = 0; e < n; ++e) {
    map.push_back(e);
    map.push_back((e + 1) % n);
  }
  const Coloring c =
      apl::graph::color_by_shared_resources(map, 2, n, n);
  EXPECT_EQ(apl::graph::count_conflicts(c, map, 2, n), 0);
  EXPECT_GE(c.num_colors, 2);
  EXPECT_LE(c.num_colors, 3);
}

TEST(Coloring, NegativeResourcesIgnored) {
  // All items use only the sentinel resource -1: one color suffices.
  const std::vector<index_t> map = {-1, -1, -1, -1};
  const Coloring c = apl::graph::color_by_shared_resources(map, 2, 2, 10);
  EXPECT_EQ(c.num_colors, 1);
}

TEST(Coloring, AllItemsShareOneResource) {
  const std::vector<index_t> map = {0, 0, 0, 0, 0};
  const Coloring c = apl::graph::color_by_shared_resources(map, 1, 5, 1);
  EXPECT_EQ(c.num_colors, 5);
  EXPECT_EQ(apl::graph::count_conflicts(c, map, 1, 1), 0);
}

TEST(Coloring, CountConflictsDetectsBadColoring) {
  const std::vector<index_t> map = {0, 0};  // two items share resource 0
  Coloring bad;
  bad.color = {0, 0};
  bad.num_colors = 1;
  EXPECT_GT(apl::graph::count_conflicts(bad, map, 1, 1), 0);
}

// Property test: random hypergraphs are always validly colored with a
// bounded number of colors (<= max resource multiplicity * small factor).
class ColoringProperty : public ::testing::TestWithParam<int> {};

TEST_P(ColoringProperty, RandomConflictsAlwaysValid) {
  apl::SplitMix64 rng(GetParam());
  const index_t items = 500;
  const index_t resources = 80;
  const index_t arity = 3;
  std::vector<index_t> map(items * arity);
  for (auto& m : map) {
    m = static_cast<index_t>(rng.below(resources));
  }
  const Coloring c =
      apl::graph::color_by_shared_resources(map, arity, items, resources);
  EXPECT_EQ(apl::graph::count_conflicts(c, map, arity, resources), 0);
  // Every item must have a color in range.
  for (index_t i = 0; i < items; ++i) {
    EXPECT_GE(c.color[i], 0);
    EXPECT_LT(c.color[i], c.num_colors);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Coloring, ManyColorsBeyondOneSweep) {
  // 100 items all sharing one resource forces 100 colors, which exceeds the
  // 64-color-per-sweep internal window and exercises the multi-sweep path.
  const index_t items = 100;
  std::vector<index_t> map(items, 0);
  const Coloring c = apl::graph::color_by_shared_resources(map, 1, items, 1);
  EXPECT_EQ(c.num_colors, items);
  EXPECT_EQ(apl::graph::count_conflicts(c, map, 1, 1), 0);
}

}  // namespace
