// Degenerate-input handling across the graph library: empty graphs,
// single-element sets, self-referencing map rows, and malformed CSR
// structures must either produce valid results or fail with an
// actionable apl::Error — never read out of bounds or loop forever.
#include <vector>

#include <gtest/gtest.h>

#include "apl/graph/coloring.hpp"
#include "apl/graph/csr.hpp"
#include "apl/graph/partition.hpp"
#include "apl/graph/rcm.hpp"

#include "../support/expect_error.hpp"

namespace {

using apl::graph::Csr;
using apl::graph::index_t;

Csr empty_graph() { return Csr{{0}, {}}; }

TEST(GraphDegenerate, EmptyGraphColorsRenumbersPartitions) {
  const Csr g = empty_graph();
  const auto coloring = apl::graph::greedy_color(g);
  EXPECT_TRUE(coloring.color.empty());
  EXPECT_EQ(coloring.num_colors, 0);
  EXPECT_TRUE(apl::graph::rcm_permutation(g).empty());
  const auto part = apl::graph::partition_kway(g, 4);
  EXPECT_EQ(part.num_parts, 4);
  EXPECT_TRUE(part.part.empty());
}

TEST(GraphDegenerate, SingleVertexWithSelfEdge) {
  const Csr g{{0, 1}, {0}};
  const auto coloring = apl::graph::greedy_color(g);
  ASSERT_EQ(coloring.color.size(), 1u);
  EXPECT_EQ(coloring.num_colors, 1);
  const auto perm = apl::graph::rcm_permutation(g);
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0);
  const auto part = apl::graph::partition_kway(g, 3);
  ASSERT_EQ(part.part.size(), 1u);
  EXPECT_GE(part.part[0], 0);
}

TEST(GraphDegenerate, SelfReferencingMapRowAdjacency) {
  // Row {2, 2} references the same target twice — node_adjacency must not
  // report 2 as its own neighbour, and coloring stays valid.
  const std::vector<index_t> map = {0, 1, 2, 2, 1, 2};
  const Csr adj = apl::graph::node_adjacency(map, 2, 3, 3);
  for (index_t v = 0; v < adj.num_vertices(); ++v) {
    for (index_t u : adj.neighbours(v)) EXPECT_NE(u, v);
  }
  const auto coloring = apl::graph::color_by_shared_resources(map, 2, 3, 3);
  EXPECT_EQ(apl::graph::count_conflicts(coloring, map, 2, 3), 0);
}

TEST(GraphDegenerate, MorePartsThanVertices) {
  const Csr g{{0, 1, 2}, {1, 0}};
  const auto part = apl::graph::partition_kway(g, 8);
  ASSERT_EQ(part.part.size(), 2u);
  for (index_t p : part.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
  }
  const auto block = apl::graph::partition_block(1, 5);
  ASSERT_EQ(block.part.size(), 1u);
  EXPECT_GE(block.part[0], 0);
}

TEST(GraphDegenerate, EmptyRcbPartition) {
  const auto part =
      apl::graph::partition_rcb(std::vector<double>{}, 2, 0, 4);
  EXPECT_EQ(part.num_parts, 4);
  EXPECT_TRUE(part.part.empty());
}

TEST(GraphDegenerate, MalformedCsrIsRejectedWithDiagnostic) {
  // Adjacency entry names a non-existent vertex.
  EXPECT_APL_ERROR("is not a vertex",
                   apl::graph::greedy_color(Csr{{0, 1}, {7}}));
  // Offsets that do not cover adj.
  EXPECT_APL_ERROR("adj has",
                   apl::graph::rcm_permutation(Csr{{0, 1}, {0, 0}}));
  // Decreasing offsets.
  EXPECT_APL_ERROR("offsets decrease",
                   apl::graph::partition_kway(Csr{{0, 2, 1}, {0, 1}}, 2));
  // Missing the mandatory leading 0.
  EXPECT_APL_ERROR("must start at 0",
                   apl::graph::greedy_color(Csr{{1, 1}, {}}));
  // A default-constructed Csr is the valid empty graph, but dangling
  // adjacency entries without offsets are not.
  EXPECT_TRUE(apl::graph::greedy_color(Csr{}).color.empty());
  EXPECT_APL_ERROR("offsets are empty but adj has",
                   apl::graph::rcm_permutation(Csr{{}, {0}}));
}

TEST(GraphDegenerate, OutOfRangeInputsNameTheOffender) {
  const std::vector<index_t> bad = {0, 5};
  EXPECT_APL_ERROR("out of range",
                   apl::graph::invert_map(bad, 2, 1, 3));
  EXPECT_APL_ERROR("only 3 resources exist",
                   apl::graph::color_by_shared_resources(bad, 2, 1, 3));
  EXPECT_APL_ERROR("negative set size",
                   apl::graph::invert_map(std::vector<index_t>{}, 2, 0, -1));
}

}  // namespace
