#include "apl/graph/rcm.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "apl/graph/csr.hpp"
#include "apl/rng.hpp"

namespace {

using apl::graph::Csr;
using apl::graph::index_t;

/// Builds the edge->vertex map of an nx x ny structured grid, then the
/// vertex adjacency, with vertices numbered in a locality-hostile
/// pseudo-random shuffle so RCM has something to fix.
Csr shuffled_grid_adjacency(index_t nx, index_t ny, std::uint64_t seed,
                            std::vector<index_t>* shuffle_out = nullptr) {
  const index_t n = nx * ny;
  std::vector<index_t> shuffle(n);
  std::iota(shuffle.begin(), shuffle.end(), 0);
  apl::SplitMix64 rng(seed);
  for (index_t i = n - 1; i > 0; --i) {
    std::swap(shuffle[i], shuffle[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  }
  std::vector<index_t> map;
  auto vid = [&](index_t x, index_t y) { return shuffle[y * nx + x]; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) {
        map.push_back(vid(x, y));
        map.push_back(vid(x + 1, y));
      }
      if (y + 1 < ny) {
        map.push_back(vid(x, y));
        map.push_back(vid(x, y + 1));
      }
    }
  }
  if (shuffle_out) *shuffle_out = shuffle;
  return apl::graph::node_adjacency(map, 2, static_cast<index_t>(map.size() / 2),
                                    n);
}

TEST(Rcm, PermutationIsBijective) {
  const Csr g = shuffled_grid_adjacency(8, 8, 1);
  const auto perm = apl::graph::rcm_permutation(g);
  ASSERT_EQ(perm.size(), 64u);
  std::vector<index_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 64; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rcm, ReducesBandwidthOnShuffledGrid) {
  const Csr g = shuffled_grid_adjacency(20, 20, 7);
  const index_t before = apl::graph::bandwidth(g);
  const auto perm = apl::graph::rcm_permutation(g);
  const Csr h = apl::graph::permute(g, perm);
  const index_t after = apl::graph::bandwidth(h);
  // A 20x20 grid has optimal bandwidth 20; the shuffle makes it ~n.
  EXPECT_LT(after, before / 4);
  EXPECT_LE(after, 3 * 20);
}

TEST(Rcm, PermutePreservesDegrees) {
  const Csr g = shuffled_grid_adjacency(6, 9, 3);
  const auto perm = apl::graph::rcm_permutation(g);
  const Csr h = apl::graph::permute(g, perm);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.neighbours(v).size(), h.neighbours(perm[v]).size());
  }
}

TEST(Rcm, PermutePreservesEdges) {
  const Csr g = shuffled_grid_adjacency(5, 5, 9);
  const auto perm = apl::graph::rcm_permutation(g);
  const Csr h = apl::graph::permute(g, perm);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    for (index_t u : g.neighbours(v)) {
      auto nb = h.neighbours(perm[v]);
      EXPECT_NE(std::find(nb.begin(), nb.end(), perm[u]), nb.end());
    }
  }
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint paths: 0-1-2 and 3-4.
  const std::vector<index_t> map = {0, 1, 1, 2, 3, 4};
  const Csr g = apl::graph::node_adjacency(map, 2, 3, 5);
  const auto perm = apl::graph::rcm_permutation(g);
  std::vector<index_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rcm, InvertPermutationRoundTrips) {
  const std::vector<index_t> perm = {2, 0, 3, 1};
  const auto inv = apl::graph::invert_permutation(perm);
  for (index_t v = 0; v < 4; ++v) EXPECT_EQ(inv[perm[v]], v);
}

TEST(Rcm, EmptyGraph) {
  Csr g;
  EXPECT_TRUE(apl::graph::rcm_permutation(g).empty());
}

}  // namespace
