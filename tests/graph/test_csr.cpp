#include "apl/graph/csr.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "apl/error.hpp"

namespace {

using apl::graph::Csr;
using apl::graph::index_t;

// 4 edges over 4 vertices in a ring: edge i connects vertex i and i+1 mod 4.
const std::vector<index_t> kRingMap = {0, 1, 1, 2, 2, 3, 3, 0};

TEST(Csr, InvertMapBuildsVertexToEdges) {
  const Csr inv = apl::graph::invert_map(kRingMap, 2, 4, 4);
  ASSERT_EQ(inv.num_vertices(), 4);
  for (index_t v = 0; v < 4; ++v) {
    auto nb = inv.neighbours(v);
    ASSERT_EQ(nb.size(), 2u) << "vertex " << v;
  }
  // Vertex 0 is touched by edges 0 and 3.
  auto nb0 = inv.neighbours(0);
  std::vector<index_t> got(nb0.begin(), nb0.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<index_t>{0, 3}));
}

TEST(Csr, InvertMapRejectsOutOfRange) {
  const std::vector<index_t> bad = {0, 7};
  EXPECT_THROW(apl::graph::invert_map(bad, 2, 1, 4), apl::Error);
}

TEST(Csr, InvertMapRejectsSizeMismatch) {
  EXPECT_THROW(apl::graph::invert_map(kRingMap, 3, 4, 4), apl::Error);
}

TEST(Csr, NodeAdjacencyOfRing) {
  const Csr adj = apl::graph::node_adjacency(kRingMap, 2, 4, 4);
  ASSERT_EQ(adj.num_vertices(), 4);
  for (index_t v = 0; v < 4; ++v) {
    auto nb = adj.neighbours(v);
    ASSERT_EQ(nb.size(), 2u);
    // Ring: neighbours are (v-1) mod 4 and (v+1) mod 4.
    std::vector<index_t> got(nb.begin(), nb.end());
    std::vector<index_t> want = {static_cast<index_t>((v + 3) % 4),
                                 static_cast<index_t>((v + 1) % 4)};
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "vertex " << v;
  }
}

TEST(Csr, NodeAdjacencyDeduplicates) {
  // Two edges both joining vertices 0 and 1.
  const std::vector<index_t> map = {0, 1, 1, 0};
  const Csr adj = apl::graph::node_adjacency(map, 2, 2, 2);
  EXPECT_EQ(adj.neighbours(0).size(), 1u);
  EXPECT_EQ(adj.neighbours(1).size(), 1u);
}

TEST(Csr, BandwidthOfPathAndRing) {
  // Path 0-1-2-3: bandwidth 1.
  const std::vector<index_t> path = {0, 1, 1, 2, 2, 3};
  EXPECT_EQ(apl::graph::bandwidth(apl::graph::node_adjacency(path, 2, 3, 4)),
            1);
  // Ring closes 3-0: bandwidth 3.
  EXPECT_EQ(
      apl::graph::bandwidth(apl::graph::node_adjacency(kRingMap, 2, 4, 4)),
      3);
}

TEST(Csr, MaxDegree) {
  // Star: edges all touch vertex 0.
  const std::vector<index_t> star = {0, 1, 0, 2, 0, 3};
  const Csr inv = apl::graph::invert_map(star, 2, 3, 4);
  EXPECT_EQ(inv.max_degree(), 3);
}

TEST(Csr, EmptyGraph) {
  Csr g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_EQ(apl::graph::bandwidth(g), 0);
}

}  // namespace
