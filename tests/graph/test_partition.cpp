#include "apl/graph/partition.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "apl/error.hpp"
#include "apl/graph/csr.hpp"

namespace {

using apl::graph::Csr;
using apl::graph::index_t;
using apl::graph::Partition;

/// Adjacency of an nx x ny structured grid (natural ordering).
Csr grid_adjacency(index_t nx, index_t ny) {
  std::vector<index_t> map;
  auto vid = [&](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) {
        map.push_back(vid(x, y));
        map.push_back(vid(x + 1, y));
      }
      if (y + 1 < ny) {
        map.push_back(vid(x, y));
        map.push_back(vid(x, y + 1));
      }
    }
  }
  return apl::graph::node_adjacency(
      map, 2, static_cast<index_t>(map.size() / 2), nx * ny);
}

/// Coordinates of the same grid.
std::vector<double> grid_coords(index_t nx, index_t ny) {
  std::vector<double> coords;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      coords.push_back(static_cast<double>(x));
      coords.push_back(static_cast<double>(y));
    }
  }
  return coords;
}

void expect_all_assigned(const Partition& p) {
  for (index_t v = 0; v < static_cast<index_t>(p.part.size()); ++v) {
    EXPECT_GE(p.part[v], 0);
    EXPECT_LT(p.part[v], p.num_parts);
  }
}

TEST(Partition, BlockSplitsEvenly) {
  const Partition p = apl::graph::partition_block(100, 4);
  expect_all_assigned(p);
  EXPECT_EQ(p.part[0], 0);
  EXPECT_EQ(p.part[99], 3);
  std::vector<int> sizes(4, 0);
  for (index_t part : p.part) ++sizes[part];
  for (int s : sizes) EXPECT_EQ(s, 25);
}

TEST(Partition, RcbBalances) {
  const auto coords = grid_coords(16, 16);
  const Partition p = apl::graph::partition_rcb(coords, 2, 256, 8);
  expect_all_assigned(p);
  const auto q = apl::graph::evaluate_partition(grid_adjacency(16, 16), p);
  EXPECT_LE(q.imbalance, 1.1);
}

TEST(Partition, RcbNonPowerOfTwoParts) {
  const auto coords = grid_coords(15, 14);
  const Partition p = apl::graph::partition_rcb(coords, 2, 15 * 14, 3);
  expect_all_assigned(p);
  std::vector<int> sizes(3, 0);
  for (index_t part : p.part) ++sizes[part];
  for (int s : sizes) EXPECT_NEAR(s, 70, 3);
}

TEST(Partition, KwayBalancesAndCuts) {
  const Csr g = grid_adjacency(24, 24);
  const Partition p = apl::graph::partition_kway(g, 4);
  expect_all_assigned(p);
  const auto q = apl::graph::evaluate_partition(g, p);
  EXPECT_LE(q.imbalance, 1.15);
  // A 24x24 grid split into 4 has a >= 48-edge cut lower bound (two
  // straight cuts); the greedy partitioner should be within a small factor.
  EXPECT_LT(q.edge_cut, 48 * 4);
  EXPECT_GT(q.edge_cut, 0);
}

TEST(Partition, KwayBeatsBlockOnShuffledNumbering) {
  // Natural grid numbering: even block partitioning is already decent, so
  // compare on the 1D-block vs 2D-aware cut for a wide grid where block
  // slabs are thin and kway can do square-ish regions.
  const Csr g = grid_adjacency(64, 8);
  const Partition pb = apl::graph::partition_block(64 * 8, 8);
  const Partition pk = apl::graph::partition_kway(g, 8);
  const auto qb = apl::graph::evaluate_partition(g, pb);
  const auto qk = apl::graph::evaluate_partition(g, pk);
  EXPECT_LE(qk.edge_cut, qb.edge_cut * 2);  // sanity: same order
  EXPECT_GT(qk.edge_cut, 0);
}

TEST(Partition, SinglePartHasNoCut) {
  const Csr g = grid_adjacency(10, 10);
  const Partition p = apl::graph::partition_kway(g, 1);
  const auto q = apl::graph::evaluate_partition(g, p);
  EXPECT_EQ(q.edge_cut, 0);
  EXPECT_EQ(q.halo_volume, 0);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
}

TEST(Partition, MorePartsThanVertices) {
  const Csr g = grid_adjacency(2, 2);
  const Partition p = apl::graph::partition_kway(g, 16);
  expect_all_assigned(p);
}

TEST(Partition, RejectsBadArguments) {
  EXPECT_THROW(apl::graph::partition_block(10, 0), apl::Error);
  const auto coords = grid_coords(4, 4);
  EXPECT_THROW(apl::graph::partition_rcb(coords, 2, 17, 2), apl::Error);
}

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionSweep, HaloVolumeGrowsSublinearlyWithParts) {
  const auto [side, parts] = GetParam();
  const Csr g = grid_adjacency(side, side);
  const Partition p = apl::graph::partition_kway(g, parts);
  const auto q = apl::graph::evaluate_partition(g, p);
  // 2D surface-to-volume: halo fraction should stay below ~4*sqrt(P)/side.
  const double frac =
      static_cast<double>(q.halo_volume) / (static_cast<double>(side) * side);
  EXPECT_LT(frac, 6.0 * std::sqrt(static_cast<double>(parts)) / side)
      << "side=" << side << " parts=" << parts;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionSweep,
    ::testing::Values(std::make_tuple(32, 2), std::make_tuple(32, 4),
                      std::make_tuple(32, 8), std::make_tuple(48, 4),
                      std::make_tuple(48, 16)));

}  // namespace
