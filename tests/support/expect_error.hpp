// Shared assertion for negative-path tests: the statement must throw
// apl::Error and the message must name the problem. Used across the op2,
// ops, graph and verify suites so diagnostics are asserted by content,
// not just by "something threw".
#pragma once

#include <string>

#include <gtest/gtest.h>

#include "apl/error.hpp"

// EXPECT_APL_ERROR(substr, stmt...): `stmt` (commas allowed) must throw
// apl::Error whose what() contains `substr`.
#define EXPECT_APL_ERROR(substr, ...)                                       \
  do {                                                                      \
    bool apl_thrown_ = false;                                               \
    try {                                                                   \
      __VA_ARGS__;                                                          \
    } catch (const apl::Error& apl_err_) {                                  \
      apl_thrown_ = true;                                                   \
      EXPECT_NE(std::string(apl_err_.what()).find(substr),                  \
                std::string::npos)                                          \
          << "apl::Error message\n  \"" << apl_err_.what()                  \
          << "\"\ndoes not contain\n  \"" << substr << '"';                 \
    }                                                                       \
    EXPECT_TRUE(apl_thrown_) << "expected apl::Error containing \""         \
                             << substr << "\", nothing was thrown";         \
  } while (0)
