#include "apl/mpisim/comm.hpp"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "apl/error.hpp"
#include "apl/fault.hpp"

namespace {

using apl::mpisim::Comm;

std::vector<std::uint8_t> bytes_of(const std::vector<double>& v) {
  std::vector<std::uint8_t> out(v.size() * sizeof(double));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

TEST(Comm, SendRecvRoundTrip) {
  Comm comm(2);
  const auto payload = bytes_of({1.0, 2.0});
  comm.send(0, 1, 7, payload);
  EXPECT_TRUE(comm.has_message(1, 0, 7));
  const auto got = comm.recv(1, 0, 7);
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(comm.has_message(1, 0, 7));
}

TEST(Comm, TagsKeepMessagesApart) {
  Comm comm(2);
  comm.send(0, 1, 1, bytes_of({1.0}));
  comm.send(0, 1, 2, bytes_of({2.0}));
  const auto m2 = comm.recv(1, 0, 2);
  const auto m1 = comm.recv(1, 0, 1);
  double v1, v2;
  std::memcpy(&v1, m1.data(), 8);
  std::memcpy(&v2, m2.data(), 8);
  EXPECT_DOUBLE_EQ(v1, 1.0);
  EXPECT_DOUBLE_EQ(v2, 2.0);
}

TEST(Comm, MissingMessageIsDeadlockError) {
  Comm comm(2);
  EXPECT_THROW(comm.recv(0, 1, 0), apl::Error);
}

TEST(Comm, RankRangeValidated) {
  Comm comm(2);
  EXPECT_THROW(comm.send(0, 5, 0, {}), apl::Error);
  EXPECT_THROW(comm.recv(-1, 0, 0), apl::Error);
}

TEST(Comm, AllreduceSums) {
  Comm comm(3);
  for (int r = 0; r < 3; ++r) {
    const std::vector<double> contrib = {1.0 * r, 10.0};
    comm.allreduce_begin(r, contrib);
  }
  const auto result = comm.allreduce_end();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_DOUBLE_EQ(result[0], 3.0);
  EXPECT_DOUBLE_EQ(result[1], 30.0);
}

TEST(Comm, AllreduceRequiresAllRanks) {
  Comm comm(2);
  comm.allreduce_begin(0, std::vector<double>{1.0});
  EXPECT_THROW(comm.allreduce_end(), apl::Error);
}

TEST(Comm, TrafficLedgerCountsBytesAndPeers) {
  Comm comm(4);
  comm.send(0, 1, 0, std::vector<std::uint8_t>(100));
  comm.send(0, 2, 0, std::vector<std::uint8_t>(50));
  comm.send(3, 0, 0, std::vector<std::uint8_t>(10));
  const auto& t = comm.traffic();
  EXPECT_EQ(t.messages(), 3u);
  EXPECT_EQ(t.total_bytes(), 160u);
  EXPECT_EQ(t.max_rank_bytes(), 150u);  // rank 0 sent the most
  EXPECT_EQ(t.max_rank_peers(), 2);
}

TEST(Comm, TrafficReset) {
  Comm comm(2);
  comm.send(0, 1, 0, std::vector<std::uint8_t>(8));
  comm.traffic().reset();
  EXPECT_EQ(comm.traffic().messages(), 0u);
  EXPECT_EQ(comm.traffic().total_bytes(), 0u);
}

TEST(Comm, EmptyMailboxGuardNamesBothRanks) {
  Comm comm(4);
  try {
    comm.recv(2, 3, 9);
    FAIL() << "empty-mailbox recv did not throw";
  } catch (const apl::Error& e) {
    // The guard must identify the broken exchange: who tried to receive,
    // from whom, and that no sends were posted at all.
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 3"), std::string::npos) << what;
    EXPECT_NE(what.find("mailbox is empty"), std::string::npos) << what;
  }
}

TEST(Comm, FailedRankRefusesTraffic) {
  Comm comm(3);
  comm.fail_rank(1);
  EXPECT_TRUE(comm.rank_failed(1));
  EXPECT_THROW(comm.send(0, 1, 0, bytes_of({1.0})), apl::fault::RankFailure);
  EXPECT_THROW(comm.send(1, 0, 0, bytes_of({1.0})), apl::fault::RankFailure);
  EXPECT_THROW(comm.allreduce_begin(1, std::vector<double>{1.0}),
               apl::fault::RankFailure);
  // The exception carries the failed rank for the recovery path.
  try {
    comm.send(0, 1, 0, bytes_of({1.0}));
    FAIL();
  } catch (const apl::fault::RankFailure& e) {
    EXPECT_EQ(e.rank(), 1);
  }
  // Traffic between live ranks still flows.
  comm.send(0, 2, 0, bytes_of({2.0}));
  EXPECT_EQ(comm.recv(2, 0, 0), bytes_of({2.0}));
}

TEST(Comm, ReviveAllClearsFailuresAndInFlightState) {
  Comm comm(2);
  comm.send(0, 1, 0, bytes_of({1.0}));   // in-flight at failure time
  comm.allreduce_begin(0, std::vector<double>{1.0});
  comm.fail_rank(0);
  comm.revive_all();
  EXPECT_TRUE(comm.failed_ranks().empty());
  // The rollback abandoned the in-flight message and the partial reduction.
  EXPECT_FALSE(comm.has_message(1, 0, 0));
  comm.allreduce_begin(0, std::vector<double>{2.0});
  comm.allreduce_begin(1, std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(comm.allreduce_end()[0], 5.0);
}

TEST(Comm, BeginExchangeConsultsInjector) {
  apl::fault::Config cfg;
  cfg.fail_rank = 1;
  cfg.fail_at_exchange = 2;
  apl::fault::Injector::global().arm(cfg);
  Comm comm(3);
  comm.begin_exchange();  // exchange 0
  comm.begin_exchange();  // exchange 1
  EXPECT_TRUE(comm.failed_ranks().empty());
  comm.begin_exchange();  // exchange 2: rank 1 dies
  EXPECT_TRUE(comm.rank_failed(1));
  // One-shot: later exchanges do not re-kill after recovery.
  comm.revive_all();
  comm.begin_exchange();
  EXPECT_TRUE(comm.failed_ranks().empty());
  apl::fault::Injector::global().disarm();
}

TEST(Comm, RecoveryTrafficIsAccounted) {
  Comm comm(2);
  comm.traffic().record_recovery(4096);
  EXPECT_EQ(comm.traffic().recoveries(), 1u);
  EXPECT_EQ(comm.traffic().recovery_bytes(), 4096u);
  EXPECT_EQ(comm.traffic().total_bytes(), 4096u);
  comm.traffic().reset();
  EXPECT_EQ(comm.traffic().recoveries(), 0u);
  EXPECT_EQ(comm.traffic().recovery_bytes(), 0u);
}

TEST(Comm, PhasedHaloExchangePattern) {
  // The pattern the op2/ops mpi backends use: every rank posts to both
  // neighbours, then every rank receives. 4 ranks in a ring.
  Comm comm(4);
  std::vector<std::vector<double>> halo(4, std::vector<double>(2));
  for (int r = 0; r < 4; ++r) {
    comm.send(r, (r + 1) % 4, 0, bytes_of({1.0 * r}));
    comm.send(r, (r + 3) % 4, 1, bytes_of({1.0 * r}));
  }
  for (int r = 0; r < 4; ++r) {
    const auto from_left = comm.recv(r, (r + 3) % 4, 0);
    const auto from_right = comm.recv(r, (r + 1) % 4, 1);
    double l, rr;
    std::memcpy(&l, from_left.data(), 8);
    std::memcpy(&rr, from_right.data(), 8);
    EXPECT_DOUBLE_EQ(l, (r + 3) % 4);
    EXPECT_DOUBLE_EQ(rr, (r + 1) % 4);
  }
  EXPECT_EQ(comm.traffic().messages(), 8u);
}

// ---- shrink / epoch / exchange-ledger resilience (PR 7) -------------------

TEST(Comm, ShrinkReranksSurvivorsAndAdvancesEpoch) {
  Comm comm(4);
  comm.fail_rank(1);
  EXPECT_EQ(comm.epoch(), 0);
  const auto map = comm.shrink();
  ASSERT_EQ(map.size(), 4u);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[1], -1);
  EXPECT_EQ(map[2], 1);
  EXPECT_EQ(map[3], 2);
  EXPECT_EQ(comm.size(), 3);
  EXPECT_EQ(comm.epoch(), 1);
  EXPECT_TRUE(comm.failed_ranks().empty());
  // The shrunk communicator works like a freshly built one.
  comm.send(0, 2, 5, bytes_of({3.5}));
  const auto got = comm.recv(2, 0, 5);
  double v;
  std::memcpy(&v, got.data(), 8);
  EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(Comm, ShrinkRequiresASurvivor) {
  Comm comm(2);
  comm.fail_rank(0);
  comm.fail_rank(1);
  EXPECT_THROW(comm.shrink(), apl::Error);
}

TEST(Comm, StaleEpochMessagesAreRejectedNotDelivered) {
  Comm comm(3);
  comm.send(0, 2, 9, bytes_of({1.0}));  // posted under epoch 0
  comm.fail_rank(1);
  comm.shrink();  // 0->0, 2->1; the in-flight message is now stale
  EXPECT_EQ(comm.size(), 2);
  EXPECT_FALSE(comm.has_message(1, 0, 9));
  EXPECT_EQ(comm.stale_rejected(), 0u);  // rejection is lazy, on receipt
  // A fresh message under the new epoch is delivered; the stale one is
  // purged and counted the moment the receiver scans past it.
  comm.send(0, 1, 9, bytes_of({2.0}));
  const auto got = comm.recv(1, 0, 9);
  double v;
  std::memcpy(&v, got.data(), 8);
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_EQ(comm.stale_rejected(), 1u);
}

TEST(Comm, TrafficRemapDropsDeadRanksTallies) {
  Comm comm(4);
  comm.send(0, 1, 0, std::vector<std::uint8_t>(100));
  comm.send(1, 0, 0, std::vector<std::uint8_t>(700));  // rank 1: heaviest
  comm.send(1, 2, 0, std::vector<std::uint8_t>(1));
  comm.send(2, 3, 0, std::vector<std::uint8_t>(40));
  (void)comm.recv(1, 0, 0);
  (void)comm.recv(0, 1, 0);
  (void)comm.recv(2, 1, 0);
  (void)comm.recv(3, 2, 0);
  EXPECT_EQ(comm.traffic().max_rank_bytes(), 701u);
  EXPECT_EQ(comm.traffic().max_rank_peers(), 2);
  comm.fail_rank(1);
  comm.shrink();
  // Dead rank 1's tallies are gone; survivors keep theirs under new ids.
  EXPECT_EQ(comm.traffic().max_rank_bytes(), 100u);
  EXPECT_EQ(comm.traffic().max_rank_peers(), 1);
  // Run totals are cumulative history and keep the dead rank's bytes.
  EXPECT_EQ(comm.traffic().total_bytes(), 841u);
}

TEST(Comm, TrafficResetClearsRecoveryAndRetryState) {
  Comm comm(2);
  comm.traffic().record_recovery(4096, 0.25);
  comm.traffic().record_retry(1e-3);
  comm.traffic().record_shrink();
  EXPECT_EQ(comm.traffic().retries(), 1u);
  EXPECT_EQ(comm.traffic().shrinks(), 1u);
  EXPECT_DOUBLE_EQ(comm.traffic().mttr(), 0.25);
  comm.traffic().reset();
  EXPECT_EQ(comm.traffic().retries(), 0u);
  EXPECT_EQ(comm.traffic().shrinks(), 0u);
  EXPECT_EQ(comm.traffic().recoveries(), 0u);
  EXPECT_DOUBLE_EQ(comm.traffic().retry_backoff_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(comm.traffic().recovery_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(comm.traffic().mttr(), 0.0);
}

TEST(Comm, DroppedMessageSurfacesAsCommFaultAtRecvOrFinish) {
  using apl::fault::Config;
  using apl::fault::Injector;
  Comm comm(2);
  Config cfg;
  cfg.drop_msg = 0;  // eat the first send
  Injector::global().arm(cfg);
  comm.begin_exchange();
  comm.send(0, 1, 3, bytes_of({1.0}));
  Injector::global().disarm();
  EXPECT_FALSE(comm.has_message(1, 0, 3));
  EXPECT_THROW(comm.recv(1, 0, 3), apl::fault::CommFault);
  // After aborting and re-posting, the exchange completes.
  comm.abort_exchange();
  comm.send(0, 1, 3, bytes_of({1.0}));
  (void)comm.recv(1, 0, 3);
  EXPECT_NO_THROW(comm.finish_exchange());
}

TEST(Comm, DuplicatedMessageIsCaughtByLedgerOrSecondRecv) {
  using apl::fault::Config;
  using apl::fault::Injector;
  Comm comm(2);
  Config cfg;
  cfg.dup_msg = 0;
  Injector::global().arm(cfg);
  comm.begin_exchange();
  comm.send(0, 1, 3, bytes_of({1.0}));
  Injector::global().disarm();
  (void)comm.recv(1, 0, 3);
  // The duplicate shares its original's sequence number: either the
  // receiver consumes it (seq seen twice) or the ledger notices one more
  // posted message than consumed.
  EXPECT_THROW(comm.finish_exchange(), apl::fault::CommFault);
  comm.abort_exchange();
  comm.send(0, 1, 3, bytes_of({1.0}));
  (void)comm.recv(1, 0, 3);
  EXPECT_NO_THROW(comm.finish_exchange());
}

TEST(Comm, CorruptedPayloadFailsItsChecksum) {
  using apl::fault::Config;
  using apl::fault::Injector;
  Comm comm(2);
  Config cfg;
  cfg.corrupt_msg = 0;
  Injector::global().arm(cfg);
  comm.begin_exchange();
  comm.send(0, 1, 3, bytes_of({1.0, 2.0}));
  Injector::global().disarm();
  EXPECT_THROW(comm.recv(1, 0, 3), apl::fault::CommFault);
}

TEST(Comm, FinishExchangeDetectsUnconsumedMessages) {
  Comm comm(2);
  comm.begin_exchange();
  comm.send(0, 1, 3, bytes_of({1.0}));
  EXPECT_THROW(comm.finish_exchange(), apl::fault::CommFault);
  comm.abort_exchange();
  EXPECT_NO_THROW(comm.finish_exchange());
}

}  // namespace
