// CloverLeaf tests: the OPS port against the hand-coded reference (the
// Fig. 5 premise — generated code must equal hand-written code), physics
// sanity, backend and distributed equivalence.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cloverleaf/cloverleaf_ops.hpp"
#include "cloverleaf/cloverleaf_ref.hpp"

namespace {

using cloverleaf::CloverOps;
using cloverleaf::CloverRef;
using cloverleaf::FieldSummary;
using cloverleaf::Options;

Options small_opts(cloverleaf::index_t n = 24) {
  Options o;
  o.nx = o.ny = n;
  return o;
}

void expect_summary_eq(const FieldSummary& a, const FieldSummary& b,
                       double tol = 0.0) {
  if (tol == 0.0) {
    EXPECT_DOUBLE_EQ(a.volume, b.volume);
    EXPECT_DOUBLE_EQ(a.mass, b.mass);
    EXPECT_DOUBLE_EQ(a.internal_energy, b.internal_energy);
    EXPECT_DOUBLE_EQ(a.kinetic_energy, b.kinetic_energy);
    EXPECT_DOUBLE_EQ(a.pressure, b.pressure);
    EXPECT_DOUBLE_EQ(a.dt, b.dt);
  } else {
    EXPECT_NEAR(a.mass, b.mass, tol * std::abs(b.mass));
    EXPECT_NEAR(a.internal_energy, b.internal_energy,
                tol * std::abs(b.internal_energy));
    EXPECT_NEAR(a.kinetic_energy, b.kinetic_energy,
                tol * (1 + std::abs(b.kinetic_energy)));
    EXPECT_NEAR(a.dt, b.dt, tol * std::abs(b.dt));
  }
}

// ---- the Fig. 5 premise -----------------------------------------------------

TEST(Cloverleaf, OpsMatchesHandCodedBitwise) {
  CloverOps ops_app(small_opts());
  CloverRef ref_app(small_opts());
  ops_app.run(20);
  ref_app.run(20);
  expect_summary_eq(ops_app.field_summary(), ref_app.field_summary());
  const auto d1 = ops_app.density();
  const auto d2 = ref_app.density();
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    ASSERT_DOUBLE_EQ(d1[i], d2[i]) << i;
  }
  const auto v1 = ops_app.velocity_x();
  const auto v2 = ref_app.velocity_x();
  for (std::size_t i = 0; i < v1.size(); ++i) {
    ASSERT_DOUBLE_EQ(v1[i], v2[i]) << i;
  }
}

// ---- physics sanity ---------------------------------------------------------

TEST(Cloverleaf, InitialSummaryMatchesDeck) {
  CloverOps app(small_opts(20));
  const auto s = app.field_summary();
  const Options o = small_opts(20);
  const double cell_vol = (o.xmax / o.nx) * (o.xmax / o.nx);
  EXPECT_NEAR(s.volume, cell_vol * o.nx * o.ny, 1e-9);
  // Mass: energetic region (state2_xfrac * state2_yfrac of the box) at
  // rho_state2, rest ambient.
  const double frac = o.state2_xfrac * o.state2_yfrac;
  const double want_mass =
      s.volume * (frac * o.rho_state2 + (1 - frac) * o.rho_ambient);
  EXPECT_NEAR(s.mass, want_mass, 1e-9 * want_mass);
  EXPECT_DOUBLE_EQ(s.kinetic_energy, 0.0);
}

TEST(Cloverleaf, MassApproximatelyConserved) {
  CloverOps app(small_opts());
  const double mass0 = app.field_summary().mass;
  app.run(40);
  const double mass1 = app.field_summary().mass;
  // Advection conserves exactly; the simplified PdV drifts slightly.
  EXPECT_NEAR(mass1, mass0, 0.02 * mass0);
}

TEST(Cloverleaf, EnergyFlowsFromInternalToKinetic) {
  CloverOps app(small_opts());
  const auto s0 = app.field_summary();
  app.run(30);
  const auto s1 = app.field_summary();
  EXPECT_GT(s1.kinetic_energy, 0.0);             // expansion started
  EXPECT_LT(s1.internal_energy, s0.internal_energy);  // converted
  const double total0 = s0.internal_energy + s0.kinetic_energy;
  const double total1 = s1.internal_energy + s1.kinetic_energy;
  EXPECT_NEAR(total1, total0, 0.05 * total0);    // roughly conserved
}

TEST(Cloverleaf, FieldsStayPhysical) {
  CloverOps app(small_opts());
  app.run(50);
  for (double d : app.density()) {
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 10.0);
  }
  EXPECT_GT(app.dt(), 0.0);
}

TEST(Cloverleaf, UniformStateIsSteady) {
  Options o = small_opts(12);
  o.rho_state2 = o.rho_ambient;  // no energetic region: uniform gas at rest
  o.e_state2 = o.e_ambient;
  CloverOps app(o);
  app.run(5);
  const auto s = app.field_summary();
  EXPECT_NEAR(s.kinetic_energy, 0.0, 1e-20);
  for (double d : app.density()) EXPECT_DOUBLE_EQ(d, o.rho_ambient);
}

// ---- backend equivalence ----------------------------------------------------

class CloverBackends : public ::testing::TestWithParam<ops::Backend> {};

TEST_P(CloverBackends, MatchesSeq) {
  CloverOps ref(small_opts(16));
  ref.run(10);
  CloverOps app(small_opts(16));
  app.ctx().set_backend(GetParam());
  app.run(10);
  expect_summary_eq(app.field_summary(), ref.field_summary(), 1e-12);
  const auto d1 = app.density();
  const auto d2 = ref.density();
  for (std::size_t i = 0; i < d1.size(); ++i) {
    ASSERT_NEAR(d1[i], d2[i], 1e-12) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CloverBackends,
                         ::testing::Values(ops::Backend::kThreads,
                                           ops::Backend::kCudaSim),
                         [](const auto& info) {
                           return ops::to_string(info.param);
                         });

// ---- lazy loop-chain execution ----------------------------------------------

TEST(CloverleafLazy, LazyTiledBitIdenticalToEager) {
  CloverOps ref(small_opts());
  ref.run(20);
  Options o = small_opts();
  o.lazy = true;  // queue loops; chains flush at calc_dt's min reduction
  CloverOps app(o);
  // Guarded kAccess forces eager execution; this test asserts the chain
  // actually formed, so drop that one check if OPAL_VERIFY armed it.
  app.ctx().set_verify(app.ctx().verify_checks() & ~apl::verify::kAccess);
  app.run(20);
  expect_summary_eq(app.field_summary(), ref.field_summary());
  const auto d1 = app.density();
  const auto d2 = ref.density();
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    ASSERT_EQ(d1[i], d2[i]) << i;  // bit-identical, not just close
  }
  const auto v1 = app.velocity_x();
  const auto v2 = ref.velocity_x();
  for (std::size_t i = 0; i < v1.size(); ++i) {
    ASSERT_EQ(v1[i], v2[i]) << i;
  }
  // The timestep really ran through the lazy engine in multi-loop chains.
  EXPECT_GT(app.ctx().chain_stats().flushes, 0u);
  EXPECT_GE(app.ctx().chain_stats().max_chain, 5u);
}

// A chain flushed as skewed tiles must attribute its work per constituent
// loop exactly as eager execution does: same call counts, same elements,
// same bytes in every access class — nothing double-counted on repeated
// flushes, nothing lumped onto the flush-triggering loop.
TEST(CloverleafLazy, ProfileAttributionMatchesEager) {
  CloverOps eager(small_opts());
  eager.run(12);
  Options o = small_opts();
  o.lazy = true;
  CloverOps lazy(o);
  lazy.ctx().set_verify(lazy.ctx().verify_checks() & ~apl::verify::kAccess);
  lazy.run(12);
  lazy.ctx().flush();  // drain any still-queued tail of the last step
  ASSERT_GT(lazy.ctx().chain_stats().flushes, 1u)
      << "the run must have crossed several flush points";

  const auto& e = eager.ctx().profile().all();
  const auto& l = lazy.ctx().profile().all();
  ASSERT_EQ(e.size(), l.size());
  for (const auto& [name, es] : e) {
    const auto it = l.find(name);
    ASSERT_NE(it, l.end()) << "loop '" << name << "' missing from lazy run";
    const apl::LoopStats& ls = it->second;
    EXPECT_EQ(ls.calls, es.calls) << name;
    EXPECT_EQ(ls.elements, es.elements) << name;
    EXPECT_EQ(ls.bytes_direct, es.bytes_direct) << name;
    EXPECT_EQ(ls.bytes_gather, es.bytes_gather) << name;
    EXPECT_EQ(ls.bytes_scatter, es.bytes_scatter) << name;
    EXPECT_EQ(ls.flops, es.flops) << name;
    // Wall time differs between the two runs, but every loop that executed
    // must have been timed (tile slices attribute seconds to their loop,
    // never to the loop whose reduction triggered the flush).
    if (es.calls > 0) {
      EXPECT_GT(ls.seconds, 0.0) << name;
    }
  }
}

TEST(CloverleafLazy, TinyTilesBitIdenticalToEager) {
  CloverOps ref(small_opts(16));
  ref.run(10);
  Options o = small_opts(16);
  o.lazy = true;
  o.tile_rows = 3;  // force many tile crossings per dependence
  CloverOps app(o);
  app.run(10);
  expect_summary_eq(app.field_summary(), ref.field_summary());
  const auto d1 = app.density();
  const auto d2 = ref.density();
  for (std::size_t i = 0; i < d1.size(); ++i) {
    ASSERT_EQ(d1[i], d2[i]) << i;
  }
}

// ---- distributed ------------------------------------------------------------

class CloverDist : public ::testing::TestWithParam<int> {};

TEST_P(CloverDist, MatchesSequential) {
  CloverOps ref(small_opts(16));
  ref.run(8);
  CloverOps app(small_opts(16));
  app.enable_distributed(GetParam());
  app.run(8);
  expect_summary_eq(app.field_summary(), ref.field_summary(), 1e-11);
  const auto d1 = app.density();
  const auto d2 = ref.density();
  for (std::size_t i = 0; i < d1.size(); ++i) {
    ASSERT_NEAR(d1[i], d2[i], 1e-11) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CloverDist, ::testing::Values(2, 4));

TEST(CloverDist, StencilChecksPassInDebugMode) {
  CloverOps app(small_opts(10));
  app.ctx().set_debug_checks(true);
  // Every kernel's accesses must be inside its declared stencils.
  EXPECT_NO_THROW(app.run(2));
}

}  // namespace
