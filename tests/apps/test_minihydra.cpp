// MiniHydra: OP2 version must match the hand-written original, converge,
// and run unchanged under every backend, renumbering and distribution —
// the paper's claim that proxy-app insights transfer to the industrial
// code rests on this kind of equivalence.
#include "minihydra/minihydra.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using minihydra::MiniHydra;

MiniHydra::Options small_opts() {
  MiniHydra::Options o;
  o.nx = 20;
  o.ny = 10;
  return o;
}

TEST(MiniHydra, Op2MatchesHandWrittenOriginal) {
  MiniHydra app(small_opts());
  const double rms_op2 = app.run(10);
  std::vector<double> q_orig;
  const double rms_orig = minihydra::run_original(small_opts(), 10, &q_orig);
  EXPECT_DOUBLE_EQ(rms_op2, rms_orig);
  const auto q = app.solution();
  ASSERT_EQ(q.size(), q_orig.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    ASSERT_DOUBLE_EQ(q[i], q_orig[i]) << i;
  }
}

TEST(MiniHydra, ResidualConverges) {
  MiniHydra app(small_opts());
  const double early = app.run(2);
  const double late = app.run(60);
  EXPECT_GT(early, 0.0);
  EXPECT_LT(late, 0.5 * early);
}

TEST(MiniHydra, RenumberingPreservesPhysics) {
  MiniHydra plain(small_opts());
  const double rms_ref = plain.run(8);
  MiniHydra app(small_opts());
  app.renumber();
  const double rms = app.run(8);
  EXPECT_NEAR(rms, rms_ref, 1e-10 * (1 + rms_ref));
}

class MiniHydraBackends : public ::testing::TestWithParam<apl::exec::Backend> {};

TEST_P(MiniHydraBackends, MatchesSeq) {
  MiniHydra ref(small_opts());
  const double rms_ref = ref.run(6);
  MiniHydra app(small_opts());
  app.ctx().set_backend(GetParam());
  app.ctx().set_block_size(48);
  EXPECT_NEAR(app.run(6), rms_ref, 1e-11 * (1 + rms_ref));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, MiniHydraBackends,
                         ::testing::Values(apl::exec::Backend::kSimd,
                                           apl::exec::Backend::kThreads,
                                           apl::exec::Backend::kCudaSim),
                         [](const auto& info) {
                           return op2::to_string(info.param);
                         });

TEST(MiniHydra, DistributedMatchesSeq) {
  MiniHydra ref(small_opts());
  const double rms_ref = ref.run(5);
  MiniHydra app(small_opts());
  app.enable_distributed(3, apl::graph::PartitionMethod::kKway);
  EXPECT_NEAR(app.run(5), rms_ref, 1e-10 * (1 + rms_ref));
}

TEST(MiniHydra, MovesMoreDataPerIterationThanAirfoil) {
  // The Fig. 3/4 premise: Hydra moves many times more bytes per mesh
  // point per iteration than Airfoil.
  MiniHydra app(small_opts());
  app.run(1);
  std::uint64_t bytes = 0;
  for (const auto& [name, s] : app.ctx().profile().all()) bytes += s.bytes();
  const double per_cell =
      static_cast<double>(bytes) / app.mesh().ncell;
  EXPECT_GT(per_cell, 1000.0);  // Airfoil is ~500 B/cell/iteration
}

}  // namespace
