// Airfoil application tests: mesh invariants, physics sanity (free-stream
// preservation, residual decay), cross-backend and distributed
// equivalence, and checkpoint/restart on the full application.
#include "airfoil/airfoil.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include <gtest/gtest.h>

namespace {

using airfoil::Airfoil;
using op2::index_t;

airfoil::Airfoil::Options small_opts(index_t nx = 24, index_t ny = 12,
                                     double bump = 0.08) {
  airfoil::Airfoil::Options o;
  o.nx = nx;
  o.ny = ny;
  o.bump = bump;
  return o;
}

// ---- mesh invariants -------------------------------------------------------

TEST(AirfoilMesh, CountsAreConsistent) {
  const auto m = airfoil::make_bump_channel(10, 6);
  EXPECT_EQ(m.ncell, 60);
  EXPECT_EQ(m.nnode, 11 * 7);
  // Interior edges: (nx-1)*ny vertical + nx*(ny-1) horizontal.
  EXPECT_EQ(m.nedge, 9 * 6 + 10 * 5);
  // Boundary: 2*nx walls + 2*ny in/out.
  EXPECT_EQ(m.nbedge, 2 * 10 + 2 * 6);
}

TEST(AirfoilMesh, EveryCellHasFourFaces) {
  const auto m = airfoil::make_bump_channel(8, 5);
  std::vector<int> faces(m.ncell, 0);
  for (index_t e = 0; e < m.nedge; ++e) {
    ++faces[m.edge2cell[2 * e]];
    ++faces[m.edge2cell[2 * e + 1]];
  }
  for (index_t b = 0; b < m.nbedge; ++b) ++faces[m.bedge2cell[b]];
  for (index_t c = 0; c < m.ncell; ++c) EXPECT_EQ(faces[c], 4) << c;
}

TEST(AirfoilMesh, OutwardNormalsCloseEachCell) {
  // Sum of (dy, -dx) over each cell's faces (with interior edges counted
  // +1 for cell0, -1 for cell1) must vanish: the discrete divergence
  // theorem that free-stream preservation rests on.
  const auto m = airfoil::make_bump_channel(7, 5, 0.12);
  std::vector<double> nx_sum(m.ncell, 0.0), ny_sum(m.ncell, 0.0);
  auto accumulate = [&](index_t n1, index_t n2, index_t cell, double sign) {
    const double dx = m.x[2 * n1] - m.x[2 * n2];
    const double dy = m.x[2 * n1 + 1] - m.x[2 * n2 + 1];
    nx_sum[cell] += sign * dy;
    ny_sum[cell] += sign * -dx;
  };
  for (index_t e = 0; e < m.nedge; ++e) {
    accumulate(m.edge2node[2 * e], m.edge2node[2 * e + 1], m.edge2cell[2 * e],
               +1.0);
    accumulate(m.edge2node[2 * e], m.edge2node[2 * e + 1],
               m.edge2cell[2 * e + 1], -1.0);
  }
  for (index_t b = 0; b < m.nbedge; ++b) {
    accumulate(m.bedge2node[2 * b], m.bedge2node[2 * b + 1], m.bedge2cell[b],
               +1.0);
  }
  for (index_t c = 0; c < m.ncell; ++c) {
    EXPECT_NEAR(nx_sum[c], 0.0, 1e-12) << c;
    EXPECT_NEAR(ny_sum[c], 0.0, 1e-12) << c;
  }
}

TEST(AirfoilMesh, BoundaryCodes) {
  const auto m = airfoil::make_bump_channel(6, 4);
  int walls = 0, far = 0;
  for (index_t code : m.bound) {
    if (code == airfoil::kBoundWall) ++walls;
    if (code == airfoil::kBoundFarfield) ++far;
  }
  EXPECT_EQ(walls, 12);
  EXPECT_EQ(far, 8);
}

// ---- physics sanity --------------------------------------------------------

TEST(AirfoilPhysics, StraightChannelPreservesFreeStream) {
  // With no bump, uniform free-stream flow is an exact steady solution;
  // the residual must be (near) zero from the first iteration.
  Airfoil app(small_opts(20, 10, /*bump=*/0.0));
  const double rms = app.run(3);
  EXPECT_LT(rms, 1e-14);
  for (index_t c = 0; c < app.mesh().ncell; ++c) {
    const auto q = app.solution();
    for (int n = 0; n < 4; ++n) {
      EXPECT_NEAR(q[4 * c + n], app.constants().qinf[n], 1e-12);
    }
  }
}

TEST(AirfoilPhysics, BumpResidualDecays) {
  Airfoil app(small_opts());
  const double early = app.run(5);
  const double late = app.run(200);
  EXPECT_GT(early, 0.0);
  EXPECT_LT(late, early * 0.5);  // converging towards steady state
  // Solution stays physical: positive density and pressure everywhere.
  const auto q = app.solution();
  const double gm1 = app.constants().gm1;
  for (index_t c = 0; c < app.mesh().ncell; ++c) {
    const double r = q[4 * c];
    EXPECT_GT(r, 0.0);
    const double p =
        gm1 * (q[4 * c + 3] -
               0.5 * (q[4 * c + 1] * q[4 * c + 1] +
                      q[4 * c + 2] * q[4 * c + 2]) / r);
    EXPECT_GT(p, 0.0);
  }
}

TEST(AirfoilPhysics, BumpAcceleratesFlow) {
  // Subsonic nozzle effect: flow over the bump crest is faster than the
  // free stream.
  Airfoil app(small_opts(30, 15));
  app.run(300);
  const auto q = app.solution();
  // Crest cell: middle of the bump (x ~ 1.5), first row.
  const index_t crest = 15;  // (i=15, j=0) for nx=30
  const double u_crest = q[4 * crest + 1] / q[4 * crest];
  const double u_inf = app.constants().qinf[1] / app.constants().qinf[0];
  EXPECT_GT(u_crest, u_inf * 1.02);
}

// ---- backend equivalence ----------------------------------------------------

class AirfoilBackends : public ::testing::TestWithParam<apl::exec::Backend> {};

TEST_P(AirfoilBackends, MatchesSeq) {
  Airfoil ref(small_opts());
  ref.ctx().set_backend(apl::exec::Backend::kSeq);
  const double rms_ref = ref.run(20);
  const auto q_ref = ref.solution();

  Airfoil app(small_opts());
  app.ctx().set_backend(GetParam());
  app.ctx().set_block_size(64);
  const double rms = app.run(20);
  const auto q = app.solution();
  EXPECT_NEAR(rms, rms_ref, 1e-10 * (1 + rms_ref));
  for (std::size_t i = 0; i < q_ref.size(); ++i) {
    ASSERT_NEAR(q[i], q_ref[i], 1e-10 * (1 + std::abs(q_ref[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AirfoilBackends,
                         ::testing::Values(apl::exec::Backend::kSimd,
                                           apl::exec::Backend::kThreads,
                                           apl::exec::Backend::kCudaSim),
                         [](const auto& info) {
                           return op2::to_string(info.param);
                         });

TEST(AirfoilBackends, SoALayoutMatches) {
  Airfoil ref(small_opts());
  const double rms_ref = ref.run(10);
  Airfoil app(small_opts());
  app.ctx().convert_layout(op2::Layout::kSoA);
  app.ctx().set_backend(apl::exec::Backend::kCudaSim);
  const double rms = app.run(10);
  EXPECT_NEAR(rms, rms_ref, 1e-10 * (1 + rms_ref));
}

// ---- distributed ------------------------------------------------------------

class AirfoilDistributed : public ::testing::TestWithParam<int> {};

TEST_P(AirfoilDistributed, MatchesSequential) {
  Airfoil ref(small_opts());
  const double rms_ref = ref.run(15);
  const auto q_ref = ref.solution();

  Airfoil app(small_opts());
  app.enable_distributed(GetParam(), apl::graph::PartitionMethod::kKway);
  const double rms = app.run(15);
  const auto q = app.solution();
  EXPECT_NEAR(rms, rms_ref, 1e-9 * (1 + rms_ref));
  for (std::size_t i = 0; i < q_ref.size(); ++i) {
    ASSERT_NEAR(q[i], q_ref[i], 1e-9 * (1 + std::abs(q_ref[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, AirfoilDistributed, ::testing::Values(2, 4));

TEST(AirfoilDistributed, HybridThreadsMatches) {
  Airfoil ref(small_opts());
  const double rms_ref = ref.run(10);
  Airfoil app(small_opts());
  app.enable_distributed(3, apl::graph::PartitionMethod::kKway,
                         apl::exec::Backend::kThreads);
  EXPECT_NEAR(app.run(10), rms_ref, 1e-9 * (1 + rms_ref));
}

TEST(AirfoilDistributed, HaloTrafficScalesWithBoundary) {
  Airfoil a2(small_opts(32, 16)), a8(small_opts(32, 16));
  a2.enable_distributed(2, apl::graph::PartitionMethod::kKway);
  a8.enable_distributed(8, apl::graph::PartitionMethod::kKway);
  a2.run(2);
  a8.run(2);
  const auto b2 = a2.distributed()->comm().traffic().total_bytes();
  const auto b8 = a8.distributed()->comm().traffic().total_bytes();
  EXPECT_GT(b8, b2);            // more ranks, more boundary
  EXPECT_LT(b8, b2 * 8);        // but far from linear in ranks
}

// ---- checkpointing on the real application ----------------------------------

TEST(AirfoilCheckpoint, RestartReproducesRun) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "airfoil.ckpt").string();
  Airfoil ref(small_opts());
  const double rms_ref = ref.run(12);

  {
    Airfoil app(small_opts());
    op2::Checkpointer ck(app.ctx(), path);
    app.run(6);
    ck.request_checkpoint();
    app.run(3);
    ASSERT_TRUE(ck.checkpoint_complete());
    // crash before finishing
  }
  {
    Airfoil app(small_opts());
    op2::Checkpointer ck = op2::Checkpointer::restore(app.ctx(), path);
    const double rms = app.run(12);
    EXPECT_DOUBLE_EQ(rms, rms_ref);
  }
  std::remove(path.c_str());
}

TEST(AirfoilCheckpoint, SpeculativeEntrySavesLessThanWorstCase) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "airfoil_spec.ckpt").string();
  Airfoil app(small_opts());
  op2::Checkpointer ck(app.ctx(), path);
  app.run(3);
  // Real Airfoil steady-state costs: save_soln 8, adt_calc 12, res_calc 13,
  // bres_calc 13, update 9 (update reads adt here; the paper's Fig. 8
  // idealizes update as not reading adt, giving 8).
  const index_t period = ck.detect_period();
  EXPECT_EQ(period, 9);  // save_soln + 2 x (adt, res, bres, update)
  const auto units = ck.units_if_entering_at(period);  // steady save_soln
  ASSERT_TRUE(units.has_value());
  EXPECT_EQ(*units, 8);
  EXPECT_EQ(ck.units_if_entering_at(period + 1).value_or(-1), 12);
  EXPECT_EQ(ck.units_if_entering_at(period + 2).value_or(-1), 13);
  EXPECT_EQ(ck.units_if_entering_at(period + 4).value_or(-1), 9);
  std::remove(path.c_str());
}

}  // namespace
