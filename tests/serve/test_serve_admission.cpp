// Admission control: overload is answered with *typed* backpressure at
// the front door (QueueFull, JobTooLarge, ShuttingDown), never by
// unbounded queueing, and the OPAL_SERVE_* knobs configure the server
// through the typed config registry.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "apl/serve/serve.hpp"
#include "serve_test_util.hpp"

namespace {

using apl::serve::JobSpec;
using apl::serve::Server;
using apl::serve::State;

/// A job that parks on a flag the test releases — the deterministic way
/// to hold a worker slot (and the queue) exactly as long as the test
/// wants.
JobSpec blocker_job(const std::string& name, std::atomic<bool>* release) {
  JobSpec spec;
  spec.name = name;
  spec.work = [release](apl::serve::JobContext&) {
    while (!release->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return std::string("released");
  };
  return spec;
}

TEST(ServeAdmission, QueueFullIsTypedBackpressure) {
  Server::Options opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  Server server(opts);

  std::atomic<bool> release{false};
  const auto id1 = server.submit(blocker_job("holder", &release));
  // Depth 1 and one non-terminal job: the next admission must bounce.
  EXPECT_THROW(server.submit(blocker_job("bounced", &release)),
               apl::serve::QueueFull);
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);
  EXPECT_EQ(server.active_jobs(), 1);

  release.store(true);
  EXPECT_EQ(server.wait(id1).state, State::kDone);
  // Terminal jobs free their slot: admission works again.
  std::atomic<bool> release2{true};
  const auto id2 = server.submit(blocker_job("after", &release2));
  EXPECT_EQ(server.wait(id2).state, State::kDone);
  EXPECT_EQ(server.stats().admitted, 2u);
}

TEST(ServeAdmission, PerfModelSizeGateRejectsTooLarge) {
  Server::Options opts;
  opts.workers = 1;
  opts.max_projected_seconds = 1e-12;  // nothing real fits
  Server server(opts);

  // The proxy-app builders fill projected_seconds from the perf model.
  JobSpec big = apl::serve::make_airfoil_job("big", apl::serve::AirfoilJob{});
  ASSERT_GT(big.projected_seconds, 0.0);
  try {
    server.submit(std::move(big));
    FAIL() << "expected JobTooLarge";
  } catch (const apl::serve::JobTooLarge& e) {
    // The message names both the projection and the limit.
    EXPECT_NE(std::string(e.what()).find("projected"), std::string::npos);
  }
  EXPECT_EQ(server.stats().rejected_too_large, 1u);

  // A spec with no projection (0 = unknown) passes the gate: the gate
  // sheds known-oversized work, it does not demand a perf model.
  std::atomic<bool> release{true};
  const auto id = server.submit(blocker_job("unknown-cost", &release));
  EXPECT_EQ(server.wait(id).state, State::kDone);
}

TEST(ServeAdmission, DrainedServerRefusesNewJobs) {
  Server server(Server::Options{});
  server.drain();
  std::atomic<bool> release{true};
  EXPECT_THROW(server.submit(blocker_job("late", &release)),
               apl::serve::ShuttingDown);
}

TEST(ServeAdmission, UnknownJobIsTyped) {
  Server server(Server::Options{});
  EXPECT_THROW(server.status(12345), apl::serve::UnknownJob);
  EXPECT_THROW(server.wait(12345), apl::serve::UnknownJob);
}

/// Scoped env override (restores on exit) for the from_env test.
struct EnvVar {
  EnvVar(const char* key, const char* value) : key_(key) {
    const char* old = std::getenv(key);
    if (old != nullptr) saved_ = old;
    ::setenv(key, value, 1);
  }
  ~EnvVar() {
    if (saved_) {
      ::setenv(key_, saved_->c_str(), 1);
    } else {
      ::unsetenv(key_);
    }
  }
  const char* key_;
  std::optional<std::string> saved_;
};

TEST(ServeAdmission, OptionsFromEnvReadsServeKnobs) {
  EnvVar workers("OPAL_SERVE_WORKERS", "5");
  EnvVar queue("OPAL_SERVE_QUEUE", "7");
  EnvVar retries("OPAL_SERVE_RETRIES", "3");
  EnvVar deadline("OPAL_SERVE_DEADLINE", "2.5");
  EnvVar watchdog("OPAL_SERVE_WATCHDOG", "0.25");
  const Server::Options opts = Server::Options::from_env();
  EXPECT_EQ(opts.workers, 5);
  EXPECT_EQ(opts.queue_depth, 7);
  EXPECT_EQ(opts.retry_budget, 3);
  EXPECT_DOUBLE_EQ(opts.default_deadline_seconds, 2.5);
  EXPECT_DOUBLE_EQ(opts.watchdog_period_seconds, 0.25);
}

}  // namespace
