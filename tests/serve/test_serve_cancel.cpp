// Deadlines, cooperative cancellation and checkpoint-backed preemption.
//
// The satellite contract under test: a cancelled job stops at the next
// library boundary (op2 par_loop entry / ops chain flush — never
// mid-loop, never by wedging the worker), its checkpoint remains
// restorable, and a preempted-then-resumed job is bitwise identical to
// an uninterrupted run.
#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "apl/cancel.hpp"
#include "apl/io/ckpt.hpp"
#include "apl/serve/serve.hpp"
#include "serve_test_util.hpp"

namespace {

using apl::cancel::Reason;
using apl::serve::JobSpec;
using apl::serve::Server;
using apl::serve::State;
using serve_test::run_solo;
using serve_test::temp_dir;
using serve_test::wait_until;

// --- library-boundary cancellation (no server involved) ---------------------

TEST(ServeCancel, Op2JobStopsAtLoopBoundary) {
  // A pre-cancelled token: the body must unwind at the FIRST op2
  // cancellation point it reaches, with the sticky reason intact.
  JobSpec spec = apl::serve::make_airfoil_job("op2-cancel",
                                              apl::serve::AirfoilJob{});
  apl::io::CheckpointStore store(temp_dir("op2_cancel") + "/s");
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);  // the instrumented points consult this
  token.cancel(Reason::kUser);
  apl::serve::JobContext jc(spec.name, store, token, 0);
  try {
    spec.work(jc);
    FAIL() << "expected Cancelled";
  } catch (const apl::cancel::Cancelled& c) {
    EXPECT_EQ(c.reason(), Reason::kUser);
  }
}

TEST(ServeCancel, OpsLazyChainStopsAtBoundary) {
  // The OPS path with lazy chains: cancellation must surface through the
  // chain-flush boundary too, not just eager loop entry.
  apl::serve::CloverJob shape;
  shape.lazy = true;
  JobSpec spec = apl::serve::make_clover_job("ops-cancel", shape);
  apl::io::CheckpointStore store(temp_dir("ops_cancel") + "/s");
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);
  token.cancel(Reason::kUser);
  apl::serve::JobContext jc(spec.name, store, token, 0);
  EXPECT_THROW(spec.work(jc), apl::cancel::Cancelled);
}

TEST(ServeCancel, DeadlineFiresMidRunWithNamedReason) {
  JobSpec spec = apl::serve::make_airfoil_job("deadline",
                                              apl::serve::AirfoilJob{});
  apl::io::CheckpointStore store(temp_dir("deadline") + "/s");
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);
  token.set_deadline(1e-9);  // already past by the first boundary
  apl::serve::JobContext jc(spec.name, store, token, 0);
  try {
    spec.work(jc);
    FAIL() << "expected Cancelled(kDeadline)";
  } catch (const apl::cancel::Cancelled& c) {
    EXPECT_EQ(c.reason(), Reason::kDeadline);
  }
  EXPECT_GT(token.beats(), 0u);  // it reached a boundary, then stopped
}

// --- server-level cancellation ----------------------------------------------

TEST(ServeCancel, DeadlineBlownJobIsCancelledServerStaysUp) {
  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  JobSpec doomed = apl::serve::make_airfoil_job("doomed",
                                                apl::serve::AirfoilJob{});
  doomed.deadline_seconds = 1e-9;
  doomed.retries = 0;
  const auto id = server.submit(std::move(doomed));
  const auto rep = server.wait(id);
  EXPECT_EQ(rep.state, State::kCancelled);
  EXPECT_EQ(rep.cancel_reason, Reason::kDeadline);

  // One tenant blowing its deadline is that tenant's problem only.
  const auto ok = server.submit(
      apl::serve::make_minihydra_job("after", apl::serve::MiniHydraJob{}));
  EXPECT_EQ(server.wait(ok).state, State::kDone);
}

TEST(ServeCancel, WatchdogCancelsStalledJob) {
  Server::Options opts;
  opts.workers = 1;
  opts.watchdog_period_seconds = 0.02;
  opts.stall_seconds = 0.25;  // frozen heartbeats for 250ms -> kStalled
  Server server(opts);

  // hang_at_loop spins without passing cancellation points: heartbeats
  // freeze, the watchdog notices, and the cancel token (polled by the
  // hang loop) ends the spin with a named verdict.
  JobSpec hung = apl::serve::make_airfoil_job("hung",
                                              apl::serve::AirfoilJob{});
  hung.faults = "hang_at_loop=10";
  hung.retries = 0;
  const auto id = server.submit(std::move(hung));
  const auto rep = server.wait(id);
  EXPECT_EQ(rep.state, State::kCancelled);
  EXPECT_EQ(rep.cancel_reason, Reason::kStalled);
  EXPECT_GE(server.stats().watchdog_kills, 1u);
}

TEST(ServeCancel, CancelWhileQueuedNeverRuns) {
  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  std::atomic<bool> release{false};
  JobSpec blocker;
  blocker.name = "holder";
  blocker.work = [&release](apl::serve::JobContext&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return std::string("done");
  };
  const auto holder = server.submit(std::move(blocker));

  const auto queued = server.submit(
      apl::serve::make_airfoil_job("queued", apl::serve::AirfoilJob{}));
  server.cancel(queued);
  release.store(true);

  const auto rep = server.wait(queued);
  EXPECT_EQ(rep.state, State::kCancelled);
  EXPECT_EQ(rep.cancel_reason, Reason::kUser);
  EXPECT_EQ(rep.attempts, 0);  // cancelled before its body ever ran
  EXPECT_EQ(server.wait(holder).state, State::kDone);
}

TEST(ServeCancel, PreemptedJobResumesBitwiseIdentical) {
  // The checkpoint-backed preemption contract end to end: preempt a job
  // before it starts (guaranteed by parking the only worker), let the
  // server requeue and resume it, and demand the final digest match an
  // uninterrupted solo run exactly.
  const apl::serve::AirfoilJob shape{};
  const std::string solo =
      run_solo(apl::serve::make_airfoil_job("ref", shape));

  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  std::atomic<bool> release{false};
  JobSpec blocker;
  blocker.name = "holder";
  blocker.work = [&release](apl::serve::JobContext&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return std::string("done");
  };
  const auto holder = server.submit(std::move(blocker));

  const auto id = server.submit(
      apl::serve::make_airfoil_job("preempted", shape));
  server.preempt(id);  // lands while queued: first attempt yields at step 0
  release.store(true);

  const auto rep = server.wait(id);
  EXPECT_EQ(rep.state, State::kDone);
  EXPECT_GE(rep.preemptions, 1);
  EXPECT_GE(rep.attempts, 2);          // yielded once, resumed once
  EXPECT_GE(rep.resumed_step, 0);      // restarted from a real checkpoint
  EXPECT_EQ(rep.result, solo);         // bitwise-identical to uninterrupted
  EXPECT_EQ(server.wait(holder).state, State::kDone);
}

TEST(ServeCancel, PreemptAndDrainLeavesRestorableCheckpoint) {
  const apl::serve::AirfoilJob long_shape{30, 15, 200, 5, 0};
  JobSpec spec = apl::serve::make_airfoil_job("parked", long_shape);
  const std::string solo = run_solo(spec);

  Server::Options opts;
  opts.workers = 1;
  opts.checkpoint_root = temp_dir("preempt_drain");
  Server server(opts);

  const auto id = server.submit(apl::serve::make_airfoil_job("parked",
                                                             long_shape));
  // Let it make some progress, then ask everyone to yield.
  ASSERT_TRUE(wait_until([&] { return server.status(id).beats > 20; }));
  server.preempt_and_drain();

  const auto rep = server.wait(id);
  ASSERT_EQ(rep.state, State::kPreempted);
  EXPECT_EQ(rep.cancel_reason, Reason::kPreempt);
  EXPECT_GE(rep.last_checkpoint_step, 0);

  // The parked checkpoint is restorable: resuming the same body against
  // the job's store must land on the solo digest — the preemption lost
  // no information.
  const std::string base =
      serve_test::server_store_base(opts.checkpoint_root, id, "parked");
  ASSERT_TRUE(apl::io::CheckpointStore(base).any_valid());
  EXPECT_EQ(serve_test::run_resume(spec, base), solo);
}

}  // namespace
