// Per-job fault isolation: a fault armed for tenant A cannot fire in
// tenant B, a failed job becomes a JobReport (never a dead server), and
// per-job resilience policies and plan caches are invisible to every
// other tenant and to the process-wide defaults.
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>

#include <gtest/gtest.h>

#include "apl/cancel.hpp"
#include "apl/fault.hpp"
#include "apl/io/plan_cache.hpp"
#include "apl/resilience.hpp"
#include "apl/serve/serve.hpp"
#include "apl/thread_pool.hpp"
#include "serve_test_util.hpp"

namespace {

using apl::serve::JobSpec;
using apl::serve::Server;
using apl::serve::State;
using serve_test::run_solo;
using serve_test::temp_dir;

TEST(ServeIsolation, CrashingTenantDoesNotPerturbHealthyTenant) {
  const apl::serve::AirfoilJob shape{};
  const std::string solo =
      run_solo(apl::serve::make_airfoil_job("ref", shape));

  Server::Options opts;
  opts.workers = 2;
  Server server(opts);

  JobSpec doomed = apl::serve::make_airfoil_job("doomed", shape);
  doomed.faults = "kill_at_loop=3";
  doomed.retries = 0;  // no budget: the crash is terminal
  const auto bad = server.submit(std::move(doomed));
  const auto good =
      server.submit(apl::serve::make_airfoil_job("healthy", shape));

  const auto bad_rep = server.wait(bad);
  EXPECT_EQ(bad_rep.state, State::kFailed);
  EXPECT_EQ(bad_rep.error_kind, "Kill");
  EXPECT_FALSE(bad_rep.error.empty());

  // The healthy tenant shared workers with a crash and noticed nothing:
  // same state, same bits as a solo run.
  const auto good_rep = server.wait(good);
  EXPECT_EQ(good_rep.state, State::kDone);
  EXPECT_EQ(good_rep.result, solo);

  // And the server itself survived the tenant failure.
  const auto after =
      server.submit(apl::serve::make_airfoil_job("after", shape));
  EXPECT_EQ(server.wait(after).state, State::kDone);
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(ServeIsolation, InjectedCrashIsRetriedFromOwnCheckpoint) {
  const apl::serve::AirfoilJob shape{};
  const std::string solo =
      run_solo(apl::serve::make_airfoil_job("ref", shape));

  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  // The kill fires once (ordinal counters persist across attempts), the
  // re-admitted attempt resumes from the job's own checkpoints — and the
  // final answer is still bitwise-identical to an undisturbed run.
  JobSpec crash = apl::serve::make_airfoil_job("crash", shape);
  crash.faults = "kill_at_loop=40";
  const auto id = server.submit(std::move(crash));
  const auto rep = server.wait(id);
  EXPECT_EQ(rep.state, State::kDone);
  EXPECT_GE(rep.retries, 1);
  EXPECT_GT(rep.backoff_seconds, 0.0);   // recorded, simulated backoff
  EXPECT_GE(rep.resumed_step, 0);        // resumed, not restarted
  EXPECT_EQ(rep.result, solo);
  EXPECT_GE(server.stats().retries, 1u);
}

TEST(ServeIsolation, PerJobResiliencePolicyDoesNotLeak) {
  Server::Options opts;
  opts.workers = 2;
  Server server(opts);

  // Same injected rank death, two tenants, two policies: the tenant that
  // opted out of recovery fails its ladder; the default tenant shrinks
  // and finishes. Neither policy touches the other or the process-wide
  // default.
  apl::serve::CloverJob shape;
  JobSpec strict = apl::serve::make_clover_job("strict", shape);
  strict.faults = "fail_rank=1@6";
  strict.resilience = "rank_failure=fail";
  strict.retries = 0;
  const auto strict_id = server.submit(std::move(strict));

  JobSpec lenient = apl::serve::make_clover_job("lenient", shape);
  lenient.faults = "fail_rank=1@6";
  const auto lenient_id = server.submit(std::move(lenient));

  const auto strict_rep = server.wait(strict_id);
  EXPECT_EQ(strict_rep.state, State::kFailed);
  EXPECT_EQ(strict_rep.error_kind, "LadderExhausted");

  const auto lenient_rep = server.wait(lenient_id);
  EXPECT_EQ(lenient_rep.state, State::kDone);

  // The process-wide policy was never modified by either tenant.
  EXPECT_EQ(apl::resilience::policy().max_retries,
            apl::resilience::Policy{}.max_retries);
}

TEST(ServeIsolation, JobInjectorScopesLeaveGlobalInjectorAlone) {
  Server::Options opts;
  opts.workers = 2;
  Server server(opts);

  JobSpec doomed =
      apl::serve::make_airfoil_job("doomed", apl::serve::AirfoilJob{});
  doomed.faults = "kill_at_loop=2";
  doomed.retries = 0;
  server.wait(server.submit(std::move(doomed)));

  // On this (non-worker) thread the current injector is the global one,
  // and the tenant's fault plan never armed it.
  EXPECT_FALSE(apl::fault::Injector::current().armed());

  // Proof by execution: a solo run on this thread right after the chaos
  // tenant sees no kill at loop ordinal 2.
  const std::string digest = run_solo(
      apl::serve::make_airfoil_job("solo-after", apl::serve::AirfoilJob{}));
  EXPECT_FALSE(digest.empty());
}

TEST(ServeIsolation, PerJobPlanCacheDirectoryIsPrivate) {
  // Under OPAL_VERIFY the access guard runs lazy loops eagerly, so no
  // ChainSchedule is ever built or cached; drop the guard for this one
  // process so the lazy path (and hence the cache write) is exercised.
  ::unsetenv("OPAL_VERIFY");
  const std::string cache_dir = temp_dir("serve_plan_cache");
  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  // The lazy CloverLeaf chain goes through plan_for() on every flush, so
  // its ChainSchedule IR lands in the tenant's private cache directory.
  apl::serve::CloverJob shape;
  shape.lazy = true;
  JobSpec cached = apl::serve::make_clover_job("cached", shape);
  cached.plan_cache_dir = cache_dir;
  const auto id = server.submit(std::move(cached));
  EXPECT_EQ(server.wait(id).state, State::kDone);

  // The tenant's plans landed in ITS directory...
  bool wrote_any = false;
  for (const auto& e : std::filesystem::directory_iterator(cache_dir)) {
    (void)e;
    wrote_any = true;
    break;
  }
  EXPECT_TRUE(wrote_any);
}

TEST(ServeIsolation, JobScopesReachTileTeamWorkers) {
  // A job that spreads work over its own thread-pool team (what the op2
  // color-round executor does on its behalf) must see its OWN scopes on
  // every member: the job's cancel token, its armed injector and its
  // private plan-cache store — not the worker threads' defaults. This is
  // the serve-side face of the apl::scope snapshot run_team installs.
  const std::string cache_dir = temp_dir("serve_team_scope_cache");
  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  JobSpec teamed;
  teamed.name = "teamed";
  // A trigger with an ordinal far beyond this job's loops: armed but
  // inert, so the check is on scope visibility, not on a fired fault.
  teamed.faults = "kill_at_loop=100000";
  teamed.plan_cache_dir = cache_dir;
  teamed.work = [](apl::serve::JobContext& jc) {
    apl::cancel::Token* job_token = &jc.token();
    apl::plan_cache::Store* job_store = &apl::plan_cache::Store::current();
    apl::ThreadPool team(3);
    std::mutex mu;
    int token_hits = 0, injector_hits = 0, store_hits = 0;
    team.run_team([&](std::size_t) {
      const bool token_ok = apl::cancel::current() == job_token;
      const bool injector_ok = apl::fault::Injector::current().armed() &&
                               !apl::fault::Injector::global().armed();
      const bool store_ok =
          &apl::plan_cache::Store::current() == job_store &&
          apl::plan_cache::Store::current().enabled();
      std::lock_guard<std::mutex> lock(mu);
      token_hits += token_ok;
      injector_hits += injector_ok;
      store_hits += store_ok;
    });
    return std::to_string(token_hits) + "/" + std::to_string(injector_hits) +
           "/" + std::to_string(store_hits);
  };

  const auto report = server.wait(server.submit(std::move(teamed)));
  ASSERT_EQ(report.state, State::kDone) << report.error;
  EXPECT_EQ(report.result, "3/3/3");
}

}  // namespace
