// Drain and shutdown semantics: drain() lets every admitted job finish,
// shutdown() cancels what still runs with a named reason, and neither
// path ever drops an admitted job silently or wedges the destructor.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apl/cancel.hpp"
#include "apl/serve/serve.hpp"
#include "serve_test_util.hpp"

namespace {

using apl::serve::JobSpec;
using apl::serve::Server;
using apl::serve::State;
using serve_test::wait_until;

TEST(ServeDrain, DrainWaitsForEveryAdmittedJob) {
  Server::Options opts;
  opts.workers = 2;
  Server server(opts);

  std::vector<apl::serve::JobId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(server.submit(apl::serve::make_minihydra_job(
        "hydra-" + std::to_string(i), apl::serve::MiniHydraJob{})));
  }
  server.drain();
  EXPECT_EQ(server.active_jobs(), 0);
  for (const auto id : ids) {
    EXPECT_EQ(server.status(id).state, State::kDone);
  }
  EXPECT_EQ(server.stats().completed, 4u);
}

TEST(ServeDrain, RetryBudgetSurvivesGracefulDrain) {
  // A job that crashes transiently while the server is draining must
  // still be re-admitted (drain means "finish what you took", not "fail
  // fast"): only a hard shutdown stops re-admission.
  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  JobSpec crash =
      apl::serve::make_airfoil_job("crash", apl::serve::AirfoilJob{});
  crash.faults = "kill_at_loop=40";
  const auto id = server.submit(std::move(crash));
  server.drain();  // blocks until the job is terminal, retries included
  const auto rep = server.status(id);
  EXPECT_EQ(rep.state, State::kDone);
  EXPECT_GE(rep.retries, 1);
}

TEST(ServeDrain, ShutdownCancelsRunningJobsWithNamedReason) {
  Server::Options opts;
  opts.workers = 1;
  Server server(opts);

  // Long enough that shutdown always lands mid-run.
  const apl::serve::AirfoilJob long_shape{30, 15, 5000, 0, 0};
  const auto id =
      server.submit(apl::serve::make_airfoil_job("long", long_shape));
  ASSERT_TRUE(wait_until([&] { return server.status(id).beats > 0; }));

  server.shutdown();
  const auto rep = server.status(id);
  EXPECT_EQ(rep.state, State::kCancelled);
  EXPECT_EQ(rep.cancel_reason, apl::cancel::Reason::kShutdown);

  // Post-shutdown admissions are refused, loudly.
  EXPECT_THROW(server.submit(apl::serve::make_minihydra_job(
                   "late", apl::serve::MiniHydraJob{})),
               apl::serve::ShuttingDown);
  server.shutdown();  // idempotent
}

TEST(ServeDrain, DestructorNeverDropsAdmittedWork) {
  std::atomic<int> finished{0};
  {
    Server::Options opts;
    opts.workers = 2;
    Server server(opts);
    for (int i = 0; i < 3; ++i) {
      JobSpec spec;
      spec.name = "quick-" + std::to_string(i);
      spec.work = [&finished](apl::serve::JobContext&) {
        finished.fetch_add(1);
        return std::string("ok");
      };
      server.submit(std::move(spec));
    }
    // No drain(), no wait(): the destructor owns the cleanup.
  }
  // Every job either ran to completion or was cancelled at a boundary —
  // none left running against freed server state (this test is primarily
  // a TSan/ASan probe for the teardown path).
  EXPECT_LE(finished.load(), 3);
}

TEST(ServeDrain, PreemptAndDrainParksEveryRunningJob) {
  Server::Options opts;
  opts.workers = 2;
  Server server(opts);

  const apl::serve::AirfoilJob long_shape{30, 15, 400, 5, 0};
  const auto a =
      server.submit(apl::serve::make_airfoil_job("a", long_shape));
  const auto b =
      server.submit(apl::serve::make_airfoil_job("b", long_shape));
  ASSERT_TRUE(wait_until([&] {
    return server.status(a).beats > 10 && server.status(b).beats > 10;
  }));

  server.preempt_and_drain();
  for (const auto id : {a, b}) {
    const auto rep = server.status(id);
    EXPECT_EQ(rep.state, State::kPreempted) << "job " << id;
    EXPECT_GE(rep.last_checkpoint_step, 0) << "job " << id;
  }
  EXPECT_EQ(server.stats().preempted, 2u);
}

}  // namespace
