// Shared helpers for the apl::serve test suite: solo reference runs
// (the job body executed outside any server, against a private store)
// and unique temp paths so parallel ctest invocations never collide.
#pragma once

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "apl/cancel.hpp"
#include "apl/io/ckpt.hpp"
#include "apl/serve/serve.hpp"

namespace serve_test {

inline std::string temp_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string unique =
      name + "_" + std::to_string(::getpid()) + "_" +
      std::to_string(counter.fetch_add(1));
  const auto dir = std::filesystem::temp_directory_path() / unique;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Runs a job body to completion outside any server: fresh checkpoint
/// store, fresh token, attempt 0. The returned digest is the reference
/// the isolation tests compare served runs against — a healthy tenant
/// sharing a server with chaos must reproduce it bitwise.
inline std::string run_solo(const apl::serve::JobSpec& spec) {
  const std::string root = temp_dir("opal_serve_solo");
  apl::io::CheckpointStore store(root + "/solo_" + spec.name);
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);  // as the server would install it
  apl::serve::JobContext jc(spec.name, store, token, 0);
  return spec.work(jc);
}

/// Resumes a job body against an existing store (what a restart after a
/// preemption does); `attempt` > 0 tells the body it is a re-admission.
inline std::string run_resume(const apl::serve::JobSpec& spec,
                              const std::string& store_base,
                              int attempt = 1) {
  apl::io::CheckpointStore store(store_base);
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);
  apl::serve::JobContext jc(spec.name, store, token, attempt);
  return spec.work(jc);
}

/// The store base the server uses for a job (kept in sync with
/// Server::submit): `<root>/job<id>_<name>`.
inline std::string server_store_base(const std::string& ckpt_root,
                                     apl::serve::JobId id,
                                     const std::string& name) {
  return ckpt_root + "/job" + std::to_string(id) + "_" + name;
}

/// Spin-waits (bounded) until `pred()` holds; returns false on timeout.
template <typename Pred>
bool wait_until(Pred pred, double timeout_seconds = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace serve_test
