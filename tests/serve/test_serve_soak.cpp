// The chaos soak, tier-1 sized: one server, a mixed tenant population
// (all three proxy apps), faults injected into a subset — a crash, a
// hang, a rank death — while the healthy tenants must reproduce their
// solo digests bitwise and the service accounting must balance exactly.
// (ci.sh runs the full-size soak through the opal_serve example, plain
// and under ThreadSanitizer; this is the fast always-on version.)
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apl/serve/serve.hpp"
#include "serve_test_util.hpp"

namespace {

using apl::serve::JobId;
using apl::serve::JobSpec;
using apl::serve::Server;
using apl::serve::State;
using serve_test::run_solo;

TEST(ServeSoak, MixedTenantsWithChaosSubset) {
  const apl::serve::AirfoilJob airfoil_shape{};
  const apl::serve::CloverJob clover_shape{};
  const apl::serve::MiniHydraJob hydra_shape{};

  // Solo references, computed before any server exists.
  const std::string airfoil_solo =
      run_solo(apl::serve::make_airfoil_job("ref-a", airfoil_shape));
  const std::string clover_solo =
      run_solo(apl::serve::make_clover_job("ref-c", clover_shape));
  const std::string hydra_solo =
      run_solo(apl::serve::make_minihydra_job("ref-h", hydra_shape));

  Server::Options opts;
  opts.workers = 3;
  opts.watchdog_period_seconds = 0.02;
  opts.stall_seconds = 0.3;
  Server server(opts);

  std::map<JobId, std::string> expect_digest;
  {
    const auto a = server.submit(
        apl::serve::make_airfoil_job("airfoil-0", airfoil_shape));
    expect_digest[a] = airfoil_solo;
    const auto c = server.submit(
        apl::serve::make_clover_job("clover-0", clover_shape));
    expect_digest[c] = clover_solo;
    const auto h = server.submit(
        apl::serve::make_minihydra_job("hydra-0", hydra_shape));
    expect_digest[h] = hydra_solo;
    // Lazy-op2 tenant: loop chains queue inside each iteration and flush
    // through the sparse-tiling engine; the digest must still reproduce
    // the EAGER solo reference bitwise (tiling is order-preserving).
    apl::serve::AirfoilJob lazy_shape{};
    lazy_shape.lazy = true;
    const auto lz = server.submit(
        apl::serve::make_airfoil_job("airfoil-lazy", lazy_shape));
    expect_digest[lz] = airfoil_solo;
  }

  // The chaos subset.
  JobSpec crash = apl::serve::make_airfoil_job("airfoil-crash",
                                               airfoil_shape);
  crash.faults = "kill_at_loop=40";
  const auto crash_id = server.submit(std::move(crash));
  expect_digest[crash_id] = airfoil_solo;  // retried from checkpoint

  JobSpec hang = apl::serve::make_airfoil_job("airfoil-hang",
                                              airfoil_shape);
  hang.faults = "hang_at_loop=40";
  hang.retries = 0;
  const auto hang_id = server.submit(std::move(hang));

  JobSpec rankloss = apl::serve::make_clover_job("clover-rankloss",
                                                 clover_shape);
  rankloss.faults = "fail_rank=1@6";
  const auto rankloss_id = server.submit(std::move(rankloss));

  server.drain();

  // Every tenant that was supposed to finish finished with the right
  // bits; the hung tenant was stopped by the watchdog, nobody else.
  for (const auto& [id, digest] : expect_digest) {
    const auto rep = server.status(id);
    EXPECT_EQ(rep.state, State::kDone) << rep.summary();
    EXPECT_EQ(rep.result, digest) << rep.summary();
  }
  const auto hang_rep = server.status(hang_id);
  EXPECT_EQ(hang_rep.state, State::kCancelled) << hang_rep.summary();
  EXPECT_EQ(hang_rep.cancel_reason, apl::cancel::Reason::kStalled);
  // The rank-death tenant recovered INSIDE the job (shrink ladder).
  EXPECT_EQ(server.status(rankloss_id).state, State::kDone);

  // Accounting balances: everything admitted reached exactly one
  // terminal bucket.
  const auto st = server.stats();
  EXPECT_EQ(st.admitted, 7u);
  EXPECT_EQ(st.admitted,
            st.completed + st.failed + st.cancelled + st.preempted);
  EXPECT_GE(st.retries, 1u);         // the crash tenant
  EXPECT_GE(st.watchdog_kills, 1u);  // the hung tenant
  EXPECT_EQ(st.failed, 0u);
}

}  // namespace
