// apl::signature: the stability contract behind every plan-cache key.
// Golden values pin the FNV-1a implementation (changing it silently would
// orphan every cache entry without the IR version noticing); the Hasher
// tests pin the framing rules (size prefixes, order sensitivity).
#include "apl/signature.hpp"

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace sig = apl::signature;

std::uint64_t fnv(std::string_view s) {
  return sig::fnv1a(
      {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

TEST(Signature, Fnv1aGoldenValues) {
  // Published FNV-1a 64-bit test vectors: these may never change while
  // kSignatureVersion-less cache keys exist on disk.
  EXPECT_EQ(fnv(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv("foobar"), 0x85944171f73967e8ULL);
}

TEST(Signature, HasherIsDeterministic) {
  auto digest = [] {
    sig::Hasher h;
    h.pod(std::int32_t{7});
    h.str("loop");
    h.mix(0xdeadbeefULL);
    return h.value();
  };
  EXPECT_EQ(digest(), digest());
}

TEST(Signature, OrderMatters) {
  sig::Hasher ab, ba;
  ab.pod(std::int32_t{1});
  ab.pod(std::int32_t{2});
  ba.pod(std::int32_t{2});
  ba.pod(std::int32_t{1});
  EXPECT_NE(ab.value(), ba.value());
}

TEST(Signature, SizePrefixPreventsConcatenationCollisions) {
  // Without length framing, str("ab")+str("c") and str("a")+str("bc")
  // would hash the same byte stream.
  sig::Hasher h1, h2;
  h1.str("ab");
  h1.str("c");
  h2.str("a");
  h2.str("bc");
  EXPECT_NE(h1.value(), h2.value());
}

TEST(Signature, SpanFramesElementCount) {
  const std::vector<std::int32_t> two{1, 2};
  const std::vector<std::int32_t> three{1, 2, 3};
  sig::Hasher h1, h2;
  h1.span<std::int32_t>(two);
  h2.span<std::int32_t>(three);
  EXPECT_NE(h1.value(), h2.value());

  // An empty span is still an event (the count), not a no-op.
  sig::Hasher empty, nothing;
  empty.span<std::int32_t>(std::span<const std::int32_t>{});
  EXPECT_NE(empty.value(), nothing.value());
}

TEST(Signature, BulkMatchesWordFold) {
  // bulk() is the documented word-wide variant: size prefix, then one
  // FNV step per 8-byte word, byte-granular tail. Pin it against a
  // straightforward reference so the on-disk contract can't drift.
  std::vector<std::uint8_t> data(19);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  sig::Hasher h;
  h.bulk<std::uint8_t>(data);

  sig::Hasher ref;
  ref.pod(static_cast<std::uint64_t>(data.size()));
  std::uint64_t acc = ref.value();
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, data.data() + i, 8);
    acc = (acc ^ w) * sig::kFnvPrime;
  }
  acc = sig::fnv1a({data.data() + i, data.size() - i}, acc);
  EXPECT_EQ(h.value(), acc);

  // Sensitive to every byte, including the tail.
  sig::Hasher tweaked;
  auto copy = data;
  copy.back() ^= 1;
  tweaked.bulk<std::uint8_t>(copy);
  EXPECT_NE(tweaked.value(), h.value());
}

TEST(Signature, SeedChaining) {
  // fnv1a(b, fnv1a(a)) == hashing a then b through one Hasher — the
  // chaining rule Hasher::bytes is built on.
  const std::array<std::uint8_t, 3> a{1, 2, 3};
  const std::array<std::uint8_t, 2> b{4, 5};
  const std::uint64_t chained = sig::fnv1a(b, sig::fnv1a(a));
  sig::Hasher h;
  h.bytes(a.data(), a.size());
  h.bytes(b.data(), b.size());
  EXPECT_EQ(h.value(), chained);
}

}  // namespace
