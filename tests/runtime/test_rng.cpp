#include "apl/rng.hpp"

#include <gtest/gtest.h>

namespace {

TEST(SplitMix64, Deterministic) {
  apl::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedsDiffer) {
  apl::SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, UniformInRange) {
  apl::SplitMix64 g(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = g.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(SplitMix64, UniformCoversRangeRoughly) {
  apl::SplitMix64 g(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(SplitMix64, BelowBounds) {
  apl::SplitMix64 g(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(g.below(17), 17u);
  EXPECT_EQ(g.below(0), 0u);
}

}  // namespace
