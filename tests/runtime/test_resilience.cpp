// apl::resilience policy parsing and the shared spec dialect
// (apl::config::parse_spec) that OPAL_RESILIENCE and OPAL_FAULTS ride on.
#include "apl/resilience.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apl/config.hpp"
#include "apl/error.hpp"

namespace {

using apl::resilience::OnRankFailure;
using apl::resilience::parse_policy;
using apl::resilience::Policy;

TEST(Resilience, DefaultsAreTheFullLadder) {
  const Policy p = parse_policy("");
  EXPECT_EQ(p.max_retries, 2);
  EXPECT_DOUBLE_EQ(p.backoff_seconds, 1e-4);
  EXPECT_DOUBLE_EQ(p.backoff_factor, 2.0);
  EXPECT_EQ(p.rank_failure, OnRankFailure::kShrink);
  EXPECT_TRUE(p.single_rank_fallback);
}

TEST(Resilience, ParsesEveryKnob) {
  const Policy p = parse_policy(
      "retries=5,backoff=1e-3,backoff_factor=3,rank_failure=revive,"
      "max_shrinks=2,fallback=0");
  EXPECT_EQ(p.max_retries, 5);
  EXPECT_DOUBLE_EQ(p.backoff_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(p.backoff_factor, 3.0);
  EXPECT_EQ(p.rank_failure, OnRankFailure::kRevive);
  EXPECT_EQ(p.max_shrinks, 2);
  EXPECT_FALSE(p.single_rank_fallback);
  EXPECT_EQ(parse_policy("rank_failure=fail").rank_failure,
            OnRankFailure::kFail);
}

TEST(Resilience, MalformedValuesThrowUnknownKeysWarn) {
  EXPECT_THROW(parse_policy("retries=many"), apl::Error);
  EXPECT_THROW(parse_policy("backoff=-1"), apl::Error);
  EXPECT_THROW(parse_policy("rank_failure=shrug"), apl::Error);
  std::vector<std::string> unknown;
  const Policy p = parse_policy("retries=7,flux_capacitor=on", &unknown);
  EXPECT_EQ(p.max_retries, 7);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "flux_capacitor");
}

TEST(Resilience, BackoffGrowsExponentiallyAndDeterministically) {
  Policy p;
  p.backoff_seconds = 0.5;
  p.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(apl::resilience::backoff_delay(p, 0), 0.5);
  EXPECT_DOUBLE_EQ(apl::resilience::backoff_delay(p, 1), 1.0);
  EXPECT_DOUBLE_EQ(apl::resilience::backoff_delay(p, 3), 4.0);
}

TEST(Resilience, SetPolicyOverridesAndResetRearms) {
  Policy p;
  p.max_retries = 9;
  apl::resilience::set_policy(p);
  EXPECT_EQ(apl::resilience::policy().max_retries, 9);
  apl::resilience::reset_policy();
  EXPECT_EQ(apl::resilience::policy().max_retries, 2);  // env unset: default
}

TEST(Resilience, ScopedPolicyOverridesThisThreadOnly) {
  Policy p;
  p.max_retries = 11;
  {
    apl::resilience::ScopedPolicy scope(&p);
    EXPECT_EQ(apl::resilience::policy().max_retries, 11);
    // Scopes nest and restore.
    Policy inner;
    inner.max_retries = 4;
    {
      apl::resilience::ScopedPolicy nested(&inner);
      EXPECT_EQ(apl::resilience::policy().max_retries, 4);
    }
    EXPECT_EQ(apl::resilience::policy().max_retries, 11);

    // Another thread never sees the override: this is what gives a
    // multi-tenant scheduler per-job policies without global state.
    int other_retries = -1;
    std::thread t([&] {
      other_retries = apl::resilience::policy().max_retries;
    });
    t.join();
    EXPECT_EQ(other_retries, 2);
  }
  EXPECT_EQ(apl::resilience::policy().max_retries, 2);
}

TEST(Resilience, OutcomeSummariesNameTheRung) {
  using apl::resilience::Outcome;
  using apl::resilience::Rung;
  EXPECT_STREQ(apl::resilience::to_string(Rung::kShrink), "shrink");
  EXPECT_STREQ(apl::resilience::to_string(Rung::kExhausted), "exhausted");

  Outcome ok;
  ok.ok = true;
  ok.rung = Rung::kShrink;
  ok.resume_step = 42;
  ok.shrinks = 1;
  const std::string s = ok.summary();
  EXPECT_NE(s.find("shrink"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);

  Outcome bad;
  bad.ok = false;
  bad.rung = Rung::kExhausted;
  bad.error_kind = "LadderExhausted";
  bad.error = "no ranks left";
  const std::string f = bad.summary();
  EXPECT_NE(f.find("LadderExhausted"), std::string::npos);
  EXPECT_NE(f.find("no ranks left"), std::string::npos);
}

TEST(Resilience, SpecDialectSplitsAndValidates) {
  const auto items = apl::config::parse_spec("a=1, b = two,c=3", "TEST_SPEC");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].key, "a");
  EXPECT_EQ(items[0].value, "1");
  EXPECT_EQ(items[1].key, "b");
  EXPECT_EQ(items[1].value, "two");
  EXPECT_THROW(apl::config::parse_spec("novalue", "TEST_SPEC"), apl::Error);
  EXPECT_THROW(apl::config::parse_spec("=5", "TEST_SPEC"), apl::Error);
}

}  // namespace
