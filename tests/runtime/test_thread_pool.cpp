#include "apl/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace {

TEST(ThreadPool, RunTeamVisitsEveryMember) {
  apl::ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> visits(4);
  pool.run_team([&](std::size_t tid) { visits[tid].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, RunTeamIsReusable) {
  apl::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.run_team([&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  apl::ThreadPool pool(4);
  const std::size_t n = 10001;
  std::vector<int> hits(n, 0);
  pool.parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  for (std::size_t i = 0; i < n; i += 997) EXPECT_EQ(hits[i], 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  apl::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  apl::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  apl::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int x = 0;
  pool.run_team([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    ++x;
  });
  EXPECT_EQ(x, 1);
}

TEST(ThreadPool, GlobalPoolExists) {
  // Must not crash and must be usable.
  std::atomic<int> c{0};
  apl::ThreadPool::global().run_team([&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), static_cast<int>(apl::ThreadPool::global().size()));
}

// ---- task mode (the apl::serve worker substrate) ----------------------------

TEST(ThreadPoolTasks, SubmittedTasksAllRunAndDrainWaits) {
  apl::ThreadPool pool(3);  // 2 background task executors
  std::atomic<int> ran{0};
  for (int i = 0; i < 40; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 40);
  EXPECT_EQ(pool.tasks_pending(), 0u);
  EXPECT_TRUE(pool.drained());
}

TEST(ThreadPoolTasks, SubmitAfterDrainThrowsDrained) {
  apl::ThreadPool pool(2);
  pool.drain();
  pool.drain();  // idempotent
  EXPECT_THROW(pool.submit([] {}), apl::ThreadPool::Drained);
}

TEST(ThreadPoolTasks, PoolWithoutBackgroundWorkersRejectsTasks) {
  // The calling thread is NOT a task executor: a size-1 pool would
  // accept work nobody ever runs, so it must refuse loudly instead.
  apl::ThreadPool pool(1);
  EXPECT_THROW(pool.submit([] {}), apl::ThreadPool::Drained);
}

TEST(ThreadPoolTasks, TeamModeStillWorksAfterDrain) {
  apl::ThreadPool pool(3);
  pool.submit([] {});
  pool.drain();
  std::atomic<int> c{0};
  pool.run_team([&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 3);
}

TEST(ThreadPoolTasks, DestructionDrainsQueuedTasksInsteadOfDroppingThem) {
  std::atomic<int> ran{0};
  {
    apl::ThreadPool pool(2);
    for (int i = 0; i < 25; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // No explicit drain: the destructor must not drop queued tasks.
  }
  EXPECT_EQ(ran.load(), 25);
}

TEST(ThreadPoolTasks, TasksAndTeamWorkInterleave) {
  // A served job on the threads backend does exactly this: run_team
  // broadcasts from inside a task while other tasks queue behind it.
  apl::ThreadPool task_pool(3);
  apl::ThreadPool team_pool(2);
  std::atomic<int> team_runs{0};
  for (int i = 0; i < 8; ++i) {
    task_pool.submit([&] {
      team_pool.run_team([&](std::size_t) { team_runs.fetch_add(1); });
    });
  }
  task_pool.drain();
  EXPECT_EQ(team_runs.load(), 16);  // 8 broadcasts x 2 members
}

}  // namespace
