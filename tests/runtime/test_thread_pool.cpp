#include "apl/thread_pool.hpp"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "apl/cancel.hpp"
#include "apl/fault.hpp"
#include "apl/resilience.hpp"
#include "apl/trace.hpp"

namespace {

TEST(ThreadPool, RunTeamVisitsEveryMember) {
  apl::ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> visits(4);
  pool.run_team([&](std::size_t tid) { visits[tid].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, RunTeamIsReusable) {
  apl::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.run_team([&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  apl::ThreadPool pool(4);
  const std::size_t n = 10001;
  std::vector<int> hits(n, 0);
  pool.parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  for (std::size_t i = 0; i < n; i += 997) EXPECT_EQ(hits[i], 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  apl::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  apl::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  apl::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int x = 0;
  pool.run_team([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    ++x;
  });
  EXPECT_EQ(x, 1);
}

TEST(ThreadPool, GlobalPoolExists) {
  // Must not crash and must be usable.
  std::atomic<int> c{0};
  apl::ThreadPool::global().run_team([&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), static_cast<int>(apl::ThreadPool::global().size()));
}

// ---- task mode (the apl::serve worker substrate) ----------------------------

TEST(ThreadPoolTasks, SubmittedTasksAllRunAndDrainWaits) {
  apl::ThreadPool pool(3);  // 2 background task executors
  std::atomic<int> ran{0};
  for (int i = 0; i < 40; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 40);
  EXPECT_EQ(pool.tasks_pending(), 0u);
  EXPECT_TRUE(pool.drained());
}

TEST(ThreadPoolTasks, SubmitAfterDrainThrowsDrained) {
  apl::ThreadPool pool(2);
  pool.drain();
  pool.drain();  // idempotent
  EXPECT_THROW(pool.submit([] {}), apl::ThreadPool::Drained);
}

TEST(ThreadPoolTasks, PoolWithoutBackgroundWorkersRunsTasksInline) {
  // A size-1 pool has no background workers; submit() must degrade to
  // inline execution instead of rejecting the work (apl::serve on a
  // 1-core host) or accepting tasks nobody ever runs.
  apl::ThreadPool pool(1);
  int ran = 0;
  pool.submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(pool.tasks_pending(), 0u);
  pool.drain();  // nothing queued, must not hang
  EXPECT_THROW(pool.submit([] {}), apl::ThreadPool::Drained);
}

TEST(ThreadPoolTasks, InlineTaskThrowDoesNotCorruptAccounting) {
  apl::ThreadPool pool(1);
  EXPECT_THROW(pool.submit([] { throw std::runtime_error("task failed"); }),
               std::runtime_error);
  // The running-task count must have been unwound, or drain() hangs.
  EXPECT_EQ(pool.tasks_pending(), 0u);
  pool.drain();
}

TEST(ThreadPoolTasks, TeamModeStillWorksAfterDrain) {
  apl::ThreadPool pool(3);
  pool.submit([] {});
  pool.drain();
  std::atomic<int> c{0};
  pool.run_team([&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 3);
}

TEST(ThreadPoolTasks, DestructionDrainsQueuedTasksInsteadOfDroppingThem) {
  std::atomic<int> ran{0};
  {
    apl::ThreadPool pool(2);
    for (int i = 0; i < 25; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // No explicit drain: the destructor must not drop queued tasks.
  }
  EXPECT_EQ(ran.load(), 25);
}

TEST(ThreadPoolTasks, TasksAndTeamWorkInterleave) {
  // A served job on the threads backend does exactly this: run_team
  // broadcasts from inside a task while other tasks queue behind it.
  apl::ThreadPool task_pool(3);
  apl::ThreadPool team_pool(2);
  std::atomic<int> team_runs{0};
  for (int i = 0; i < 8; ++i) {
    task_pool.submit([&] {
      team_pool.run_team([&](std::size_t) { team_runs.fetch_add(1); });
    });
  }
  task_pool.drain();
  EXPECT_EQ(team_runs.load(), 16);  // 8 broadcasts x 2 members
}

// ---------------------------------------------------------------------------
// Scope propagation (apl/scope.hpp): team workers must observe the
// submitting thread's thread-local execution scopes.
// ---------------------------------------------------------------------------

TEST(ThreadPoolScopes, CancelPointFiresInsideTeamWorkers) {
  // Regression: cancel tokens are thread-local, so before the scope
  // snapshot a cancellation point inside a run_team body was a silent
  // no-op on every worker member. Members other than 0 must now see the
  // caller's token and throw — and the exception must surface on the
  // calling thread instead of terminating the worker.
  apl::ThreadPool pool(4);
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);
  token.cancel(apl::cancel::Reason::kUser);
  std::atomic<int> worker_points{0};
  EXPECT_THROW(
      pool.run_team([&](std::size_t tid) {
        if (tid == 0) return;  // only exercise the off-thread members
        worker_points.fetch_add(1);
        apl::cancel::point("test::team");
      }),
      apl::cancel::Cancelled);
  EXPECT_EQ(worker_points.load(), 3);
}

TEST(ThreadPoolScopes, WorkersObserveSubmitterScopes) {
  apl::ThreadPool pool(3);
  apl::cancel::Token token;
  apl::fault::Injector injector;
  apl::resilience::Policy policy;
  policy.max_retries = 77;  // recognizable
  apl::cancel::Scope cancel_scope(&token);
  apl::fault::Injector::Scope fault_scope(&injector);
  apl::resilience::ScopedPolicy policy_scope(&policy);
  apl::trace::RankScope rank_scope(5);

  std::mutex mu;
  int token_hits = 0, injector_hits = 0, policy_hits = 0, rank_hits = 0;
  pool.run_team([&](std::size_t) {
    const bool token_ok = apl::cancel::current() == &token;
    const bool injector_ok = &apl::fault::Injector::current() == &injector;
    const bool policy_ok = apl::resilience::policy().max_retries == 77;
    const bool rank_ok = apl::trace::Recorder::current_rank() == 5;
    std::lock_guard<std::mutex> lock(mu);
    token_hits += token_ok;
    injector_hits += injector_ok;
    policy_hits += policy_ok;
    rank_hits += rank_ok;
  });
  EXPECT_EQ(token_hits, 3);
  EXPECT_EQ(injector_hits, 3);
  EXPECT_EQ(policy_hits, 3);
  EXPECT_EQ(rank_hits, 3);
}

TEST(ThreadPoolScopes, WorkersUninstallScopesAfterTheBody) {
  // The snapshot is for the body's duration only: a later team on the
  // same workers (no scopes installed on the submitter) must see clean
  // thread-locals, or one job's cancel token would leak into the next.
  apl::ThreadPool pool(3);
  {
    apl::cancel::Token token;
    apl::cancel::Scope scope(&token);
    pool.run_team([](std::size_t) {});
  }
  std::atomic<int> clean{0};
  pool.run_team([&](std::size_t) {
    if (apl::cancel::current() == nullptr) clean.fetch_add(1);
  });
  EXPECT_EQ(clean.load(), 3);
}

TEST(ThreadPoolScopes, TeamBodyExceptionPropagatesToCaller) {
  apl::ThreadPool pool(4);
  std::atomic<int> ran{0};
  // Whichever member throws, the barrier completes (every member ran)
  // and exactly one exception reaches the caller.
  EXPECT_THROW(pool.run_team([&](std::size_t tid) {
    ran.fetch_add(1);
    if (tid != 0) throw std::runtime_error("worker body failed");
  }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 4);
  // The pool is still usable afterwards.
  std::atomic<int> again{0};
  pool.run_team([&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 4);
}

TEST(ThreadPoolScopes, TasksDoNotInheritSubmitterScopes) {
  // Task mode stays scope-free by design: apl::serve installs each job's
  // scopes inside the task body, and inheriting the submitter's would
  // bleed one tenant's cancel token into another's worker.
  apl::ThreadPool pool(2);
  apl::cancel::Token token;
  apl::cancel::Scope scope(&token);
  std::atomic<bool> saw_token{true};
  pool.submit([&] { saw_token.store(apl::cancel::current() != nullptr); });
  pool.drain();
  EXPECT_FALSE(saw_token.load());
}

}  // namespace
