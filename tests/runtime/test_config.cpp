// apl::config: the one typed reader for OPAL_* knobs — registry coverage,
// flag/string/int semantics, and the strictness guarantees (unknown keys
// are programming errors, malformed integers throw naming the key).
#include "apl/config.hpp"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "apl/error.hpp"

namespace {

/// Sets an environment variable for one test and restores the previous
/// value on exit, keeping tests order-independent.
struct EnvVar {
  EnvVar(const char* key, const char* value) : key_(key) {
    const char* old = std::getenv(key);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(key, value, 1);
    } else {
      ::unsetenv(key);
    }
  }
  ~EnvVar() {
    if (saved_) {
      ::setenv(key_, saved_->c_str(), 1);
    } else {
      ::unsetenv(key_);
    }
  }
  const char* key_;
  std::optional<std::string> saved_;
};

TEST(Config, RegistryCoversEveryKnob) {
  const auto keys = apl::config::known_keys();
  auto has = [&](const char* name) {
    for (const auto& k : keys) {
      if (std::string_view(k.name) == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("APL_BACKEND"));
  EXPECT_TRUE(has("APL_TESTKIT_SEED"));
  EXPECT_TRUE(has("OPAL_CHECK_FINITE"));
  EXPECT_TRUE(has("OPAL_FAULTS"));
  EXPECT_TRUE(has("OPAL_NUM_THREADS"));
  EXPECT_TRUE(has("OPAL_PLAN_CACHE"));
  EXPECT_TRUE(has("OPAL_TRACE"));
  EXPECT_TRUE(has("OPAL_VERIFY"));
  // The simulation-service knobs ride the same typed registry.
  EXPECT_TRUE(has("OPAL_SERVE_DEADLINE"));
  EXPECT_TRUE(has("OPAL_SERVE_QUEUE"));
  EXPECT_TRUE(has("OPAL_SERVE_RETRIES"));
  EXPECT_TRUE(has("OPAL_SERVE_WATCHDOG"));
  EXPECT_TRUE(has("OPAL_SERVE_WORKERS"));
  for (const auto& k : keys) {
    EXPECT_FALSE(std::string_view(k.summary).empty())
        << k.name << " has no summary";
  }
}

TEST(Config, StringValueDistinguishesUnsetFromEmpty) {
  {
    EnvVar unset("OPAL_TRACE", nullptr);
    EXPECT_FALSE(apl::config::string_value("OPAL_TRACE").has_value());
  }
  {
    EnvVar empty("OPAL_TRACE", "");
    const auto v = apl::config::string_value("OPAL_TRACE");
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->empty());
  }
  {
    EnvVar set("OPAL_TRACE", "chrome:/tmp/t.json");
    EXPECT_EQ(apl::config::string_value("OPAL_TRACE"), "chrome:/tmp/t.json");
  }
}

TEST(Config, FlagSemantics) {
  // A flag is "set, non-empty, and not '0'".
  {
    EnvVar unset("OPAL_CHECK_FINITE", nullptr);
    EXPECT_FALSE(apl::config::flag("OPAL_CHECK_FINITE"));
  }
  {
    EnvVar empty("OPAL_CHECK_FINITE", "");
    EXPECT_FALSE(apl::config::flag("OPAL_CHECK_FINITE"));
  }
  {
    EnvVar zero("OPAL_CHECK_FINITE", "0");
    EXPECT_FALSE(apl::config::flag("OPAL_CHECK_FINITE"));
  }
  {
    EnvVar one("OPAL_CHECK_FINITE", "1");
    EXPECT_TRUE(apl::config::flag("OPAL_CHECK_FINITE"));
  }
}

TEST(Config, IntValueParsesDecimalAndHex) {
  {
    EnvVar dec("APL_TESTKIT_SEED", "42");
    EXPECT_EQ(apl::config::int_value("APL_TESTKIT_SEED"), 42);
  }
  {
    EnvVar hex("APL_TESTKIT_SEED", "0x2a");
    EXPECT_EQ(apl::config::int_value("APL_TESTKIT_SEED"), 42);
  }
  {
    EnvVar unset("APL_TESTKIT_SEED", nullptr);
    EXPECT_FALSE(apl::config::int_value("APL_TESTKIT_SEED").has_value());
  }
}

TEST(Config, MalformedIntThrowsNamingTheKey) {
  EnvVar bad("APL_TESTKIT_SEED", "12x3");
  try {
    (void)apl::config::int_value("APL_TESTKIT_SEED");
    FAIL() << "malformed integer accepted";
  } catch (const apl::Error& e) {
    EXPECT_NE(std::string(e.what()).find("APL_TESTKIT_SEED"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12x3"), std::string::npos);
  }
}

TEST(Config, UnregisteredKeyIsAProgrammingError) {
  // Readers must go through the registry; a typo'd key throws instead of
  // silently reading nothing.
  EXPECT_THROW((void)apl::config::string_value("OPAL_NO_SUCH_KNOB"),
               apl::Error);
}

}  // namespace
