// apl::trace: span nesting across op2 color rounds and ops tile segments,
// thread-safety of the recorder, Chrome trace_event schema validation, and
// the differential guarantee that tracing never perturbs results.
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apl/testkit/fixtures.hpp"
#include "apl/trace.hpp"
#include "op2/op2.hpp"
#include "ops/ops.hpp"

namespace {

using apl::trace::Event;
using apl::trace::Recorder;
using apl::trace::Span;

/// Enables tracing for one test on a clean buffer; restores the default
/// (disabled, empty) on exit so tests stay order-independent.
struct TraceOn {
  TraceOn() {
    Recorder::global().clear();
    Recorder::global().set_enabled(true);
  }
  ~TraceOn() {
    Recorder::global().set_enabled(false);
    Recorder::global().clear();
  }
};

std::vector<Event> by_cat(const std::vector<Event>& evs, const char* cat) {
  std::vector<Event> out;
  for (const Event& e : evs) {
    if (std::string_view(e.cat) == cat) out.push_back(e);
  }
  return out;
}

/// True if `inner` lies within `outer`'s [ts, ts+dur] window. The two ends
/// come from the same now_seconds() clock, so strict containment holds for
/// genuinely nested spans.
bool nested_in(const Event& inner, const Event& outer) {
  return inner.ts >= outer.ts &&
         inner.ts + inner.dur <= outer.ts + outer.dur;
}

// ---- recorder basics --------------------------------------------------------

TEST(Trace, DisabledSpansAreNoOps) {
  // Not asserted at startup because OPAL_TRACE (the ci.sh trace stage)
  // legitimately arms the recorder before main().
  Recorder& r = Recorder::global();
  const bool was = r.enabled();
  r.set_enabled(false);
  r.clear();
  {
    Span s(apl::trace::kLoop, "noop");
    EXPECT_FALSE(s.active());
    s.set_bytes(123);  // must not crash or record
  }
  EXPECT_EQ(r.size(), 0u);
  r.set_enabled(was);
}

TEST(Trace, RecordsNestedSpansWithCounters) {
  TraceOn guard;
  {
    Span outer(apl::trace::kChain, "outer");
    outer.set_elements(3);
    {
      Span inner(apl::trace::kTile, "inner");
      inner.set_bytes(64);
      inner.set_index(2);
    }
  }
  const auto evs = Recorder::global().snapshot();
  ASSERT_EQ(evs.size(), 2u);  // inner closes (and records) first
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[0].bytes, 64u);
  EXPECT_EQ(evs[0].index, 2);
  EXPECT_EQ(evs[1].name, "outer");
  EXPECT_EQ(evs[1].elements, 3u);
  EXPECT_TRUE(nested_in(evs[0], evs[1]));
  EXPECT_GE(evs[0].dur, 0.0);
}

TEST(Trace, RankScopeAttributesAndRestores) {
  TraceOn guard;
  EXPECT_EQ(Recorder::current_rank(), -1);
  {
    apl::trace::RankScope rs(2);
    Span s(apl::trace::kHalo, "ranked");
  }
  Span s2(apl::trace::kLoop, "unranked");
  EXPECT_EQ(Recorder::current_rank(), -1);
  (void)s2;
}

// ---- op2: color rounds nest inside the par_loop span ------------------------

TEST(Trace, Op2ColorRoundsNestInsideLoopSpan) {
  apl::testkit::GridMesh mesh = apl::testkit::make_grid(8, 6);
  op2::Context ctx;
  op2::Set& edges = ctx.decl_set(mesh.num_edges(), "edges");
  op2::Set& nodes = ctx.decl_set(mesh.num_nodes(), "nodes");
  op2::Map& e2n = ctx.decl_map(edges, nodes, 2, mesh.edge2node, "e2n");
  std::vector<double> zero(mesh.num_nodes(), 0.0);
  op2::Dat<double>& deg = ctx.decl_dat<double>(nodes, 1, zero, "deg");
  ctx.set_block_size(16);  // multiple blocks -> a real multi-color plan
  ctx.set_backend(apl::exec::Backend::kThreads);
  // Guarded kAccess routes through the sequential schedule — no colored
  // plan, no color spans. This test asserts the threads executor's span
  // nesting, so drop that one check if OPAL_VERIFY armed it.
  ctx.set_verify(ctx.verify_checks() & ~apl::verify::kAccess);

  TraceOn guard;
  op2::par_loop(ctx, "degree", edges,
                [](op2::Acc<double> a, op2::Acc<double> b) {
                  a[0] += 1.0;
                  b[0] += 1.0;
                },
                op2::arg(deg, e2n, 0, apl::exec::Access::kInc),
                op2::arg(deg, e2n, 1, apl::exec::Access::kInc));

  const auto evs = Recorder::global().snapshot();
  const auto loops = by_cat(evs, apl::trace::kLoop);
  const auto colors = by_cat(evs, apl::trace::kColor);
  // Exactly one "degree" loop span (the plan-build span is named
  // "plan:degree" and shares the category).
  const auto it = std::find_if(loops.begin(), loops.end(), [](const Event& e) {
    return e.name == "degree";
  });
  ASSERT_NE(it, loops.end());
  ASSERT_GE(colors.size(), 2u)
      << "an indirect increment over a connected grid needs >= 2 colors";
  std::set<std::int64_t> ordinals;
  for (const Event& c : colors) {
    EXPECT_EQ(c.name, "degree");
    EXPECT_TRUE(nested_in(c, *it)) << "color round outside its loop span";
    ordinals.insert(c.index);
  }
  EXPECT_EQ(ordinals.size(), colors.size()) << "color ordinals must be unique";
  // The plan's color count reached the profile too (satellite: colors
  // column), and matches the spans one-to-one.
  EXPECT_EQ(ctx.profile().stats("degree").colors, colors.size());
}

// ---- ops: tile segments nest inside the chain-flush span --------------------

TEST(Trace, OpsTileSegmentsNestInsideChainSpan) {
  apl::testkit::HeatGrid h(32, 32);
  h.ctx.set_verify(h.ctx.verify_checks() & ~apl::verify::kAccess);
  h.ctx.set_lazy(true);
  h.ctx.set_tile_rows(8);  // force several tiles per flush

  TraceOn guard;
  ops::par_loop(h.ctx, "jacobi", *h.grid, h.interior(),
                [](ops::Acc<double> u, ops::Acc<double> t) {
                  t(0, 0) = 0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) + u(0, -1));
                },
                ops::arg(*h.u, *h.five, ops::Access::kRead),
                ops::arg(*h.t, ops::Access::kWrite));
  ops::par_loop(h.ctx, "copy", *h.grid, h.interior(),
                [](ops::Acc<double> t, ops::Acc<double> u) {
                  u(0, 0) = t(0, 0);
                },
                ops::arg(*h.t, ops::Access::kRead),
                ops::arg(*h.u, ops::Access::kWrite));
  h.ctx.flush();

  const auto evs = Recorder::global().snapshot();
  const auto chains = by_cat(evs, apl::trace::kChain);
  const auto tiles = by_cat(evs, apl::trace::kTile);
  ASSERT_EQ(chains.size(), 1u);
  ASSERT_GE(tiles.size(), 2u);
  for (const Event& t : tiles) {
    EXPECT_TRUE(t.name == "jacobi" || t.name == "copy") << t.name;
    EXPECT_TRUE(nested_in(t, chains[0])) << "tile outside its chain flush";
    EXPECT_GT(t.elements, 0u);
  }
  // The chain span reports how many loops it flushed and how many tiles
  // ran; each tile yields one slice span per loop it intersects, so the
  // slice count is at least the tile count.
  EXPECT_EQ(chains[0].elements, 2u);
  EXPECT_GT(chains[0].index, 1);
  EXPECT_GE(static_cast<std::int64_t>(tiles.size()), chains[0].index);
}

// ---- thread safety ----------------------------------------------------------

TEST(Trace, ConcurrentSpansFromManyThreads) {
  TraceOn guard;
  constexpr int kThreads = 8, kSpansPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s(apl::trace::kLoop, "worker");
        s.set_index(t);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto evs = Recorder::global().snapshot();
  ASSERT_EQ(evs.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  std::set<std::uint32_t> tids;
  for (const Event& e : evs) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads))
      << "each thread must get its own stable tid";
}

// ---- Chrome trace_event export ----------------------------------------------

TEST(Trace, ChromeJsonValidatesAgainstSchema) {
  TraceOn guard;
  {
    apl::trace::RankScope rs(1);
    Span s(apl::trace::kHalo, R"(needs "escaping"\ and control)");
    s.set_bytes(4096);
  }
  { Span s(apl::trace::kLoop, "plain"); }
  const std::string json = Recorder::global().chrome_json();
  EXPECT_EQ(apl::trace::validate_chrome_json(json), "") << json;
  // Ranked spans land on pid = rank + 1, rank-less ones on pid 0.
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
}

TEST(Trace, ValidatorRejectsMalformedDocuments) {
  EXPECT_NE(apl::trace::validate_chrome_json("not json"), "");
  EXPECT_NE(apl::trace::validate_chrome_json("{}"), "");
  EXPECT_NE(apl::trace::validate_chrome_json(R"({"traceEvents": 3})"), "");
  EXPECT_NE(apl::trace::validate_chrome_json(
                R"({"traceEvents": [{"name": "x"}]})"),
            "");
  EXPECT_NE(apl::trace::validate_chrome_json(
                R"({"traceEvents": [{"name": "x", "cat": "loop",
                    "ph": "B", "ts": 0, "dur": 0, "pid": 0, "tid": 0}]})"),
            "")
      << "only complete events (ph == X) are in the schema";
  EXPECT_EQ(apl::trace::validate_chrome_json(
                R"({"traceEvents": [{"name": "x", "cat": "loop",
                    "ph": "X", "ts": 1.5, "dur": 0, "pid": 0, "tid": 3,
                    "args": {"bytes": 0}}]})"),
            "");
}

TEST(Trace, WriteChromeJsonRoundTrips) {
  TraceOn guard;
  { Span s(apl::trace::kCkpt, "save"); }
  const std::string path = ::testing::TempDir() + "apl_roundtrip.trace.json";
  Recorder::global().write_chrome_json(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(apl::trace::validate_chrome_json(contents), "");
}

// ---- differential: tracing must not perturb results -------------------------

std::vector<double> run_sweeps(bool traced) {
  Recorder::global().clear();
  Recorder::global().set_enabled(traced);
  apl::testkit::HeatGrid h(24, 24);
  ops::par_loop(h.ctx, "init", *h.grid, h.with_halo(),
                [](ops::Acc<double> u, const int* idx) {
                  u(0, 0) = 0.01 * idx[0] + 0.3 * idx[1];
                },
                ops::arg(*h.u, ops::Access::kWrite), ops::arg_idx());
  for (int s = 0; s < 5; ++s) {
    ops::par_loop(h.ctx, "jacobi", *h.grid, h.interior(),
                  [](ops::Acc<double> u, ops::Acc<double> t) {
                    t(0, 0) =
                        0.25 * (u(1, 0) + u(-1, 0) + u(0, 1) + u(0, -1));
                  },
                  ops::arg(*h.u, *h.five, ops::Access::kRead),
                  ops::arg(*h.t, ops::Access::kWrite));
    ops::par_loop(h.ctx, "copy", *h.grid, h.interior(),
                  [](ops::Acc<double> t, ops::Acc<double> u) {
                    u(0, 0) = t(0, 0);
                  },
                  ops::arg(*h.t, ops::Access::kRead),
                  ops::arg(*h.u, ops::Access::kWrite));
  }
  Recorder::global().set_enabled(false);
  Recorder::global().clear();
  std::vector<double> out;
  for (ops::index_t j = 0; j < h.ny; ++j) {
    for (ops::index_t i = 0; i < h.nx; ++i) out.push_back(*h.u->at(i, j));
  }
  return out;
}

TEST(Trace, TracingOnOffBitwiseIdenticalResults) {
  const std::vector<double> off = run_sweeps(false);
  const std::vector<double> on = run_sweeps(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << "tracing changed element " << i;
  }
}

}  // namespace
