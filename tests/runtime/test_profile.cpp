#include "apl/profile.hpp"

#include <thread>

#include <gtest/gtest.h>

namespace {

TEST(Profile, AccumulatesCallsAndTime) {
  apl::Profile prof;
  auto& s = prof.stats("res_calc");
  {
    apl::ScopedLoopTimer t(s);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    apl::ScopedLoopTimer t(s);
  }
  EXPECT_EQ(s.calls, 2u);
  EXPECT_GT(s.seconds, 0.004);
}

TEST(Profile, BandwidthComputation) {
  apl::LoopStats s;
  s.bytes_direct = 1'500'000'000ull;
  s.bytes_gather = 300'000'000ull;
  s.bytes_scatter = 200'000'000ull;
  s.seconds = 1.0;
  EXPECT_DOUBLE_EQ(s.gb_per_s(), 2.0);
  apl::LoopStats zero;
  EXPECT_DOUBLE_EQ(zero.gb_per_s(), 0.0);
}

TEST(Profile, ReportListsLoops) {
  apl::Profile prof;
  prof.stats("update").bytes_direct = 1024;
  prof.stats("adt_calc").calls = 3;
  const std::string rep = prof.report();
  EXPECT_NE(rep.find("update"), std::string::npos);
  EXPECT_NE(rep.find("adt_calc"), std::string::npos);
}

TEST(Profile, ClearEmpties) {
  apl::Profile prof;
  prof.stats("x").calls = 1;
  prof.clear();
  EXPECT_TRUE(prof.all().empty());
}

}  // namespace
