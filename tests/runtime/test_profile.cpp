#include "apl/profile.hpp"

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

TEST(Profile, AccumulatesCallsAndTime) {
  apl::Profile prof;
  auto& s = prof.stats("res_calc");
  {
    apl::ScopedLoopTimer t(s);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    apl::ScopedLoopTimer t(s);
  }
  EXPECT_EQ(s.calls, 2u);
  EXPECT_GT(s.seconds, 0.004);
}

TEST(Profile, BandwidthComputation) {
  apl::LoopStats s;
  s.bytes_direct = 1'500'000'000ull;
  s.bytes_gather = 300'000'000ull;
  s.bytes_scatter = 200'000'000ull;
  s.seconds = 1.0;
  EXPECT_DOUBLE_EQ(s.gb_per_s(), 2.0);
  apl::LoopStats zero;
  EXPECT_DOUBLE_EQ(zero.gb_per_s(), 0.0);
}

TEST(Profile, ReportListsLoops) {
  apl::Profile prof;
  prof.stats("update").bytes_direct = 1024;
  prof.stats("adt_calc").calls = 3;
  const std::string rep = prof.report();
  EXPECT_NE(rep.find("update"), std::string::npos);
  EXPECT_NE(rep.find("adt_calc"), std::string::npos);
}

TEST(Profile, ClearEmpties) {
  apl::Profile prof;
  prof.stats("x").calls = 1;
  prof.clear();
  EXPECT_TRUE(prof.all().empty());
}

// ---- report() hardening -----------------------------------------------------

TEST(Profile, EmptyReportIsSafe) {
  const apl::Profile prof;
  EXPECT_EQ(prof.report(), "(no loops recorded)\n");
  const std::string js = prof.to_json();
  EXPECT_NE(js.find("\"loops\""), std::string::npos);
  EXPECT_EQ(js.find("\"name\""), std::string::npos);  // no rows
}

TEST(Profile, ZeroCallAndZeroTimeRowsRender) {
  apl::Profile prof;
  prof.stats("declared_never_ran");        // all-zero row
  prof.stats("ran_but_instant").calls = 4; // seconds == 0
  prof.stats("bytes_no_time").bytes_direct = 1 << 20;
  const std::string rep = prof.report();
  EXPECT_NE(rep.find("declared_never_ran"), std::string::npos);
  EXPECT_NE(rep.find("ran_but_instant"), std::string::npos);
  // No div-by-zero artifacts may leak into the table.
  EXPECT_EQ(rep.find("nan"), std::string::npos);
  EXPECT_EQ(rep.find("inf"), std::string::npos);
}

TEST(Profile, LongNamesKeepColumnsAligned) {
  apl::Profile prof;
  prof.stats("a").calls = 1;
  prof.stats("a_very_long_loop_name_that_overflows_fixed_columns").calls = 1;
  const std::string rep = prof.report();
  // The name column widens to the longest name, so the calls column (right-
  // aligned) ends at the same offset in the header and in every data row.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  for (std::size_t nl; (nl = rep.find('\n', pos)) != std::string::npos;
       pos = nl + 1) {
    lines.push_back(rep.substr(pos, nl - pos));
  }
  ASSERT_GE(lines.size(), 3u);
  const std::size_t calls_at = lines[0].find("calls");
  ASSERT_NE(calls_at, std::string::npos);
  const std::size_t calls_end = calls_at + 5;
  for (std::size_t i = 1; i < 3; ++i) {
    ASSERT_GT(lines[i].size(), calls_end);
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
        lines[i][calls_end - 1])))
        << "row " << i << " lost its calls column:\n" << rep;
  }
}

TEST(Profile, ClearDuringOpenTimerIsSafe) {
  apl::Profile prof;
  {
    // The (Profile&, name) form re-resolves the entry when it closes, so a
    // clear() below the open timer must not write into a freed LoopStats.
    apl::ScopedLoopTimer t(prof, "loop_that_clears");
    prof.clear();
  }
  ASSERT_EQ(prof.all().size(), 1u);
  EXPECT_EQ(prof.stats("loop_that_clears").calls, 1u);
  EXPECT_GE(prof.stats("loop_that_clears").seconds, 0.0);
}

// ---- timebase rule ----------------------------------------------------------

TEST(Profile, ModelSecondsWinTheTimebase) {
  // cudasim accumulates model_seconds; the host wall time of simulating the
  // device is meaningless for bandwidth, so gb_per_s() must use the model
  // time whenever one contributed — and wall time otherwise.
  apl::LoopStats s;
  s.bytes_direct = 4'000'000'000ull;
  s.seconds = 100.0;      // slow host simulation
  s.model_seconds = 2.0;  // what the modelled device would take
  EXPECT_DOUBLE_EQ(s.effective_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(s.gb_per_s(), 2.0);
  s.model_seconds = 0.0;
  EXPECT_DOUBLE_EQ(s.effective_seconds(), 100.0);
  EXPECT_DOUBLE_EQ(s.gb_per_s(), 0.04);
}

TEST(Profile, ReportFlagsModelTimedRows) {
  apl::Profile prof;
  auto& dev = prof.stats("on_device");
  dev.calls = 1;
  dev.seconds = 50.0;
  dev.model_seconds = 0.25;
  auto& host = prof.stats("on_host");
  host.calls = 1;
  host.seconds = 0.5;
  const std::string rep = prof.report();
  EXPECT_NE(rep.find("0.2500*"), std::string::npos)
      << "device-model rows must be flagged:\n" << rep;
  EXPECT_NE(rep.find("device-model"), std::string::npos) << rep;
}

TEST(Profile, ToJsonCarriesEveryCounter) {
  apl::Profile prof;
  auto& s = prof.stats("diff");
  s.calls = 2;
  s.seconds = 0.5;
  s.bytes_direct = 100;
  s.bytes_gather = 20;
  s.bytes_scatter = 3;
  s.halo_bytes = 7;
  s.colors = 4;
  s.model_seconds = 0.125;
  const std::string js = prof.to_json();
  for (const char* needle :
       {"\"name\": \"diff\"", "\"calls\": 2", "\"bytes_direct\": 100",
        "\"bytes_gather\": 20", "\"bytes_scatter\": 3", "\"halo_bytes\": 7",
        "\"colors\": 4", "\"model_seconds\": 0.125",
        "\"effective_seconds\": 0.125"}) {
    EXPECT_NE(js.find(needle), std::string::npos) << needle << "\n" << js;
  }
}

}  // namespace
