// apl::cancel — the cooperative cancellation token: sticky first-reason
// semantics, lazy + eager deadlines, heartbeat counting at points,
// the non-throwing preemption flag, and thread-local scope nesting.
#include "apl/cancel.hpp"

#include <thread>

#include <gtest/gtest.h>

namespace {

using apl::cancel::Cancelled;
using apl::cancel::Reason;
using apl::cancel::Scope;
using apl::cancel::Token;

TEST(Cancel, FirstReasonSticks) {
  Token t;
  EXPECT_FALSE(t.cancelled());
  t.cancel(Reason::kUser);
  t.cancel(Reason::kDeadline);  // too late: the user cancel won
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), Reason::kUser);
}

TEST(Cancel, CheckThrowsNamedReasonAndWhere) {
  Token t;
  t.cancel(Reason::kStalled);
  try {
    t.check("op2::par_loop(res_calc)");
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), Reason::kStalled);
    EXPECT_NE(std::string(c.what()).find("res_calc"), std::string::npos);
  }
}

TEST(Cancel, DeadlineFiresLazilyAtNextCheck) {
  Token t;
  t.set_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(t.deadline_expired());
  EXPECT_FALSE(t.cancelled());  // lazy: nothing fired yet
  try {
    t.check("boundary");
    FAIL() << "expected Cancelled(kDeadline)";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), Reason::kDeadline);
  }
}

TEST(Cancel, ExpireDeadlineIsTheEagerWatchdogPath) {
  Token t;
  t.expire_deadline();  // no deadline armed: no-op
  EXPECT_FALSE(t.cancelled());
  t.set_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.expire_deadline();
  EXPECT_EQ(t.reason(), Reason::kDeadline);
}

TEST(Cancel, DisarmingDeadlineKeepsTokenAlive) {
  Token t;
  t.set_deadline(1e-9);
  t.set_deadline(0);  // <= 0 disarms
  EXPECT_FALSE(t.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.check("boundary");  // must not throw
  EXPECT_FALSE(t.cancelled());
}

TEST(Cancel, PointsBeatAndPreemptNeverThrows) {
  Token t;
  Scope scope(&t);
  for (int i = 0; i < 5; ++i) apl::cancel::point("loop");
  EXPECT_EQ(t.beats(), 5u);

  // Preemption is a request, not a cancellation: points keep passing.
  t.request_preempt();
  EXPECT_TRUE(apl::cancel::yield_requested());
  apl::cancel::point("loop");
  EXPECT_EQ(t.beats(), 6u);
  t.clear_preempt();
  EXPECT_FALSE(apl::cancel::yield_requested());
}

TEST(Cancel, PointWithoutTokenIsANoop) {
  ASSERT_EQ(apl::cancel::current(), nullptr);
  apl::cancel::point("anywhere");  // must not throw
  EXPECT_FALSE(apl::cancel::yield_requested());
}

TEST(Cancel, ScopesNestAndRestore) {
  Token outer, inner;
  EXPECT_EQ(apl::cancel::current(), nullptr);
  {
    Scope s1(&outer);
    EXPECT_EQ(apl::cancel::current(), &outer);
    {
      Scope s2(&inner);
      EXPECT_EQ(apl::cancel::current(), &inner);
    }
    EXPECT_EQ(apl::cancel::current(), &outer);
  }
  EXPECT_EQ(apl::cancel::current(), nullptr);
}

TEST(Cancel, ScopeIsPerThread) {
  Token t;
  Scope scope(&t);
  apl::cancel::Token* seen = &t;
  std::thread other([&] { seen = apl::cancel::current(); });
  other.join();
  EXPECT_EQ(seen, nullptr);  // the installation never leaks across threads
}

TEST(Cancel, ResetRearmsForAFreshAttempt) {
  Token t;
  Scope scope(&t);
  apl::cancel::point("loop");
  t.request_preempt();
  t.set_deadline(1e-9);
  t.cancel(Reason::kUser);
  t.reset();
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.preempt_requested());
  EXPECT_FALSE(t.has_deadline());
  EXPECT_EQ(t.beats(), 1u);  // heartbeats survive: monitors track deltas
  apl::cancel::point("loop");
  EXPECT_EQ(t.beats(), 2u);
}

TEST(Cancel, ReasonNamesAreStable) {
  EXPECT_STREQ(apl::cancel::to_string(Reason::kNone), "none");
  EXPECT_STREQ(apl::cancel::to_string(Reason::kUser), "cancelled");
  EXPECT_STREQ(apl::cancel::to_string(Reason::kDeadline), "deadline");
  EXPECT_STREQ(apl::cancel::to_string(Reason::kStalled), "stalled");
  EXPECT_STREQ(apl::cancel::to_string(Reason::kPreempt), "preempted");
  EXPECT_STREQ(apl::cancel::to_string(Reason::kShutdown), "shutdown");
}

}  // namespace
