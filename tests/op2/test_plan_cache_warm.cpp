// OP2 warm-start differential: with a populated plan cache, a fresh
// process (modeled by a fresh Airfoil instance) must load every colored
// plan from disk — zero inspector runs, checked through apl::trace — and
// produce bitwise-identical results. A corrupted entry must degrade to a
// fresh inspector run with a named diagnostic, never a crash or a silent
// result change.
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "airfoil/airfoil.hpp"
#include "apl/fault.hpp"
#include "apl/io/plan_cache.hpp"
#include "apl/trace.hpp"

namespace {

using airfoil::Airfoil;
using apl::plan_cache::Store;
using apl::trace::Recorder;

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Scoped cache directory on the global store; restores the disabled
/// default on exit so other tests stay cache-free.
struct CacheDir {
  explicit CacheDir(const std::string& name)
      : dir((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(dir);
    Store::global().set_directory(dir);
  }
  ~CacheDir() {
    Store::global().set_directory("");
    std::filesystem::remove_all(dir);
  }
  std::string dir;
};

Airfoil::Options small_opts() {
  Airfoil::Options o;
  o.nx = 12;
  o.ny = 6;
  return o;
}

std::vector<double> run_airfoil(int iters) {
  Airfoil app(small_opts());
  app.ctx().set_backend(apl::exec::Backend::kThreads);
  // Guarded kAccess executes the sequential schedule and never touches
  // the plan machinery these tests exercise; drop that one check if
  // OPAL_VERIFY armed it (the kPlan audit of decoded plans stays on).
  app.ctx().set_verify(app.ctx().verify_checks() & ~apl::verify::kAccess);
  app.run(iters);
  return app.solution();
}

TEST(PlanCacheWarmOp2, WarmRunLoadsEveryPlanAndMatchesCold) {
  CacheDir cache("op2_warm_cache");

  // Cold: every plan is built once and persisted.
  const std::vector<double> cold = run_airfoil(3);
  const auto cold_stats = Store::global().stats();
  ASSERT_GT(cold_stats.stores, 0u);
  EXPECT_EQ(cold_stats.hits, 0u);

  // Warm: a fresh context must perform zero plan construction — every
  // "plan:" span in the trace is an inspector run.
  Store::global().reset_stats();
  Recorder::global().clear();
  Recorder::global().set_enabled(true);
  const std::vector<double> warm = run_airfoil(3);
  Recorder::global().set_enabled(false);
  const auto evs = Recorder::global().snapshot();
  Recorder::global().clear();

  std::size_t builds = 0, hits = 0;
  for (const auto& e : evs) {
    if (e.name.rfind("plan:", 0) == 0) ++builds;
    if (e.name.rfind("plan_hit:", 0) == 0) ++hits;
  }
  EXPECT_EQ(builds, 0u) << "warm start ran the inspector";
  EXPECT_GT(hits, 0u);

  const auto warm_stats = Store::global().stats();
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_EQ(warm_stats.corrupt, 0u);
  EXPECT_EQ(warm_stats.hits, cold_stats.stores);

  EXPECT_TRUE(bitwise_equal(cold, warm))
      << "warm start diverged from cold run";
}

TEST(PlanCacheWarmOp2, PlanSecondsAccumulates) {
  CacheDir cache("op2_plan_seconds");
  Airfoil app(small_opts());
  app.ctx().set_backend(apl::exec::Backend::kThreads);
  app.ctx().set_verify(app.ctx().verify_checks() & ~apl::verify::kAccess);
  app.run(1);
  EXPECT_GT(app.ctx().plan_seconds(), 0.0);
}

TEST(PlanCacheWarmOp2, CorruptEntryFallsBackToFreshInspectorRun) {
  CacheDir cache("op2_corrupt_cache");

  // Baseline without any cache interference.
  Store::global().set_directory("");
  const std::vector<double> baseline = run_airfoil(2);

  // Cold populate with the corrupt_plan_cache trigger armed: the first
  // persisted blob carries a flipped payload bit past its CRC.
  Store::global().set_directory(cache.dir);
  apl::fault::Injector::global().arm(
      apl::fault::parse_config("corrupt_plan_cache=4"));
  const std::vector<double> cold = run_airfoil(2);
  apl::fault::Injector::global().disarm();
  EXPECT_TRUE(bitwise_equal(baseline, cold));

  // Warm: the poisoned entry must surface as a named corrupt-miss, the
  // plan rebuilds fresh, and results never change.
  Store::global().reset_stats();
  const std::vector<double> warm = run_airfoil(2);
  const auto stats = Store::global().stats();
  EXPECT_EQ(stats.corrupt, 1u) << "CRC mismatch not detected";
  EXPECT_GT(stats.hits, 0u) << "the other entries should still hit";
  EXPECT_TRUE(bitwise_equal(baseline, warm))
      << "corrupt cache entry altered results";
}

}  // namespace
