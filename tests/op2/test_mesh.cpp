#include "op2/mesh.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "apl/error.hpp"
#include "op2/context.hpp"

namespace {

using op2::index_t;

TEST(Mesh, DeclSetAndLookup) {
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(10, "nodes");
  EXPECT_EQ(nodes.size(), 10);
  EXPECT_EQ(nodes.name(), "nodes");
  EXPECT_EQ(&ctx.set(nodes.id()), &nodes);
  EXPECT_GE(nodes.capacity(), nodes.size());
  EXPECT_EQ(nodes.capacity() % 64, 0);
}

TEST(Mesh, DeclSetRejectsNegative) {
  op2::Context ctx;
  EXPECT_THROW(ctx.decl_set(-1, "bad"), apl::Error);
}

TEST(Mesh, MapValidatesTable) {
  op2::Context ctx;
  op2::Set& edges = ctx.decl_set(2, "edges");
  op2::Set& nodes = ctx.decl_set(3, "nodes");
  const std::vector<index_t> good = {0, 1, 1, 2};
  op2::Map& m = ctx.decl_map(edges, nodes, 2, good, "e2n");
  EXPECT_EQ(m.at(1, 1), 2);
  EXPECT_EQ(m.arity(), 2);

  const std::vector<index_t> out_of_range = {0, 3, 1, 2};
  EXPECT_THROW(ctx.decl_map(edges, nodes, 2, out_of_range, "bad"),
               apl::Error);
  const std::vector<index_t> wrong_size = {0, 1};
  EXPECT_THROW(ctx.decl_map(edges, nodes, 2, wrong_size, "bad"), apl::Error);
}

TEST(Mesh, DatInitAndEntryAccess) {
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(3, "nodes");
  const std::vector<double> init = {1, 2, 3, 4, 5, 6};
  op2::Dat<double>& d = ctx.decl_dat<double>(nodes, 2, init, "q");
  EXPECT_EQ(d.dim(), 2);
  EXPECT_EQ(d.entry(1)[0], 3.0);
  EXPECT_EQ(d.entry(1)[d.stride()], 4.0);
  EXPECT_EQ(d.to_vector(), init);
}

TEST(Mesh, DatInitSizeValidated) {
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(3, "nodes");
  const std::vector<double> wrong = {1, 2, 3};
  EXPECT_THROW(ctx.decl_dat<double>(nodes, 2, wrong, "q"), apl::Error);
}

TEST(Mesh, DatUninitializedIsZero) {
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(4, "nodes");
  op2::Dat<double>& d =
      ctx.decl_dat<double>(nodes, 1, std::span<const double>{}, "z");
  for (double v : d.to_vector()) EXPECT_EQ(v, 0.0);
}

TEST(Mesh, LayoutConversionRoundTrips) {
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(5, "nodes");
  const std::vector<double> init = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  op2::Dat<double>& d = ctx.decl_dat<double>(nodes, 2, init, "q");
  d.convert_layout(op2::Layout::kSoA);
  EXPECT_EQ(d.layout(), op2::Layout::kSoA);
  // Logical content unchanged...
  EXPECT_EQ(d.to_vector(), init);
  // ...while the physical stride changed.
  EXPECT_EQ(d.stride(), nodes.capacity());
  EXPECT_EQ(d.entry(3)[0], 6.0);
  EXPECT_EQ(d.entry(3)[d.stride()], 7.0);
  d.convert_layout(op2::Layout::kAoS);
  EXPECT_EQ(d.to_vector(), init);
  EXPECT_EQ(d.stride(), 1);
}

TEST(Mesh, PackUnpackAddEntry) {
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(2, "nodes");
  const std::vector<double> init = {1, 2, 3, 4};
  op2::Dat<double>& d = ctx.decl_dat<double>(nodes, 2, init, "q");
  double buf[2];
  d.pack_entry(1, buf);
  EXPECT_EQ(buf[0], 3.0);
  EXPECT_EQ(buf[1], 4.0);
  const double inc[2] = {10, 20};
  d.add_entry(0, inc);
  d.pack_entry(0, buf);
  EXPECT_EQ(buf[0], 11.0);
  EXPECT_EQ(buf[1], 22.0);
  const double repl[2] = {-1, -2};
  d.unpack_entry(1, repl);
  EXPECT_EQ(d.entry(1)[0], -1.0);
}

TEST(Mesh, FindDatByName) {
  op2::Context ctx;
  op2::Set& nodes = ctx.decl_set(2, "nodes");
  ctx.decl_dat<double>(nodes, 1, std::span<const double>{}, "alpha");
  ctx.decl_dat<double>(nodes, 1, std::span<const double>{}, "beta");
  ASSERT_NE(ctx.find_dat("beta"), nullptr);
  EXPECT_EQ(ctx.find_dat("beta")->name(), "beta");
  EXPECT_EQ(ctx.find_dat("gamma"), nullptr);
}

TEST(Mesh, ArgValidation) {
  op2::Context ctx;
  op2::Set& edges = ctx.decl_set(1, "edges");
  op2::Set& nodes = ctx.decl_set(2, "nodes");
  op2::Set& cells = ctx.decl_set(2, "cells");
  const std::vector<index_t> table = {0, 1};
  op2::Map& e2n = ctx.decl_map(edges, nodes, 2, table, "e2n");
  op2::Dat<double>& on_cells =
      ctx.decl_dat<double>(cells, 1, std::span<const double>{}, "c");
  // Map targets nodes but dat lives on cells.
  EXPECT_THROW(op2::arg(on_cells, e2n, 0, apl::exec::Access::kRead), apl::Error);
  op2::Dat<double>& on_nodes =
      ctx.decl_dat<double>(nodes, 1, std::span<const double>{}, "n");
  EXPECT_THROW(op2::arg(on_nodes, e2n, 2, apl::exec::Access::kRead), apl::Error);
  EXPECT_NO_THROW(op2::arg(on_nodes, e2n, 1, apl::exec::Access::kRead));
}

TEST(Mesh, ArgGblValidation) {
  double v = 0;
  EXPECT_THROW(op2::arg_gbl(&v, 1, apl::exec::Access::kWrite), apl::Error);
  EXPECT_THROW(op2::arg_gbl(&v, 1, apl::exec::Access::kRW), apl::Error);
  EXPECT_NO_THROW(op2::arg_gbl(&v, 1, apl::exec::Access::kInc));
}

TEST(Mesh, UniqueTargetsCounts) {
  op2::Context ctx;
  op2::Set& edges = ctx.decl_set(3, "edges");
  op2::Set& nodes = ctx.decl_set(5, "nodes");
  // Only nodes 0,1,2 are referenced.
  const std::vector<index_t> table = {0, 1, 1, 2, 2, 0};
  op2::Map& e2n = ctx.decl_map(edges, nodes, 2, table, "e2n");
  EXPECT_EQ(ctx.unique_targets(e2n), 3);
}

}  // namespace
