// Exhaustive configuration sweeps: every combination of backend, layout
// and plan block size must produce the same physics. This is the property
// the whole active-library approach stands on — the "performance" choices
// are invisible to the "science".
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "airfoil/airfoil.hpp"
#include "op2/op2.hpp"

namespace {

using apl::exec::Backend;
using op2::Layout;

double reference_rms() {
  static const double rms = [] {
    airfoil::Airfoil app;
    return app.run(8);
  }();
  return rms;
}

class AirfoilConfigSweep
    : public ::testing::TestWithParam<std::tuple<Backend, Layout, int>> {};

TEST_P(AirfoilConfigSweep, SamePhysicsEveryConfiguration) {
  const auto [backend, layout, block_size] = GetParam();
  airfoil::Airfoil app;
  app.ctx().set_backend(backend);
  app.ctx().convert_layout(layout);
  app.ctx().set_block_size(block_size);
  const double rms = app.run(8);
  EXPECT_NEAR(rms, reference_rms(), 1e-10 * (1 + reference_rms()));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, AirfoilConfigSweep,
    ::testing::Combine(::testing::Values(Backend::kSeq, Backend::kSimd,
                                         Backend::kThreads,
                                         Backend::kCudaSim),
                       ::testing::Values(Layout::kAoS, Layout::kSoA),
                       ::testing::Values(32, 256)),
    [](const auto& info) {
      return std::string(op2::to_string(std::get<0>(info.param))) + "_" +
             op2::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param));
    });

class AirfoilDistSweep
    : public ::testing::TestWithParam<
          std::tuple<int, apl::graph::PartitionMethod, Backend>> {};

TEST_P(AirfoilDistSweep, SamePhysicsEveryDecomposition) {
  const auto [ranks, method, node_backend] = GetParam();
  airfoil::Airfoil app;
  app.enable_distributed(ranks, method, node_backend);
  const double rms = app.run(8);
  EXPECT_NEAR(rms, reference_rms(), 1e-9 * (1 + reference_rms()));
}

INSTANTIATE_TEST_SUITE_P(
    AllDecomps, AirfoilDistSweep,
    ::testing::Values(
        std::make_tuple(2, apl::graph::PartitionMethod::kBlock,
                        Backend::kSeq),
        std::make_tuple(3, apl::graph::PartitionMethod::kKway,
                        Backend::kSeq),
        std::make_tuple(5, apl::graph::PartitionMethod::kKway,
                        Backend::kSimd),
        std::make_tuple(4, apl::graph::PartitionMethod::kKway,
                        Backend::kThreads),
        std::make_tuple(2, apl::graph::PartitionMethod::kBlock,
                        Backend::kCudaSim)));

TEST(AirfoilSweep, RenumberingComposesWithEveryBackend) {
  for (const Backend b : {Backend::kSeq, Backend::kSimd, Backend::kThreads,
                          Backend::kCudaSim}) {
    airfoil::Airfoil app;
    op2::renumber_mesh(app.ctx(), app.edge2cell_map());
    app.ctx().set_backend(b);
    EXPECT_NEAR(app.run(8), reference_rms(),
                1e-9 * (1 + reference_rms()))
        << op2::to_string(b);
  }
}

TEST(AirfoilSweep, DebugChecksPassOnRealApplication) {
  airfoil::Airfoil app;
  app.ctx().set_debug_checks(true);
  EXPECT_NO_THROW(app.run(2));
}

}  // namespace
