// Distributed backend: the same loops must produce the same answers as the
// sequential backend, for every partitioner and rank count, while all data
// motion flows through the metered simulated communicator.
#include "op2/dist.hpp"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "op2/op2.hpp"
#include "apl/testkit/fixtures.hpp"

namespace {

using apl::graph::PartitionMethod;
using apl::exec::Access;
using op2::index_t;

struct DistHarness {
  explicit DistHarness(index_t nx = 8, index_t ny = 6)
      : mesh(apl::testkit::make_grid(nx, ny)) {
    edges = &ctx.decl_set(mesh.num_edges(), "edges");
    nodes = &ctx.decl_set(mesh.num_nodes(), "nodes");
    e2n = &ctx.decl_map(*edges, *nodes, 2, mesh.edge2node, "e2n");
    x = &ctx.decl_dat<double>(*nodes, 2, mesh.node_coords, "x");
    std::vector<double> qi(mesh.num_nodes());
    for (index_t i = 0; i < mesh.num_nodes(); ++i) qi[i] = 1.0 + i % 7;
    q = &ctx.decl_dat<double>(*nodes, 1, qi, "q");
    res = &ctx.decl_dat<double>(*nodes, 1, std::span<const double>{}, "res");
  }
  apl::testkit::GridMesh mesh;
  op2::Context ctx;
  op2::Set* edges;
  op2::Set* nodes;
  op2::Map* e2n;
  op2::Dat<double>* x;
  op2::Dat<double>* q;
  op2::Dat<double>* res;
};

/// Reference: the pseudo-Laplace sweep run with the seq backend.
std::vector<double> reference_sweep(int sweeps) {
  DistHarness h;
  double rms = 0;
  for (int s = 0; s < sweeps; ++s) {
    op2::par_loop(h.ctx, "zero", *h.nodes,
                  [](op2::Acc<double> r) { r[0] = 0; },
                  op2::arg(*h.res, Access::kWrite));
    op2::par_loop(
        h.ctx, "flux", *h.edges,
        [](op2::Acc<double> qa, op2::Acc<double> qb, op2::Acc<double> ra,
           op2::Acc<double> rb) {
          const double f = 0.25 * (qa[0] - qb[0]);
          ra[0] -= f;
          rb[0] += f;
        },
        op2::arg(*h.q, *h.e2n, 0, Access::kRead),
        op2::arg(*h.q, *h.e2n, 1, Access::kRead),
        op2::arg(*h.res, *h.e2n, 0, Access::kInc),
        op2::arg(*h.res, *h.e2n, 1, Access::kInc));
    op2::par_loop(h.ctx, "apply", *h.nodes,
                  [](op2::Acc<double> q, op2::Acc<double> r,
                     op2::Acc<double> s) {
                    q[0] += r[0];
                    s[0] += r[0] * r[0];
                  },
                  op2::arg(*h.q, Access::kRW),
                  op2::arg(*h.res, Access::kRead),
                  op2::arg_gbl(&rms, 1, Access::kInc));
  }
  auto out = h.q->to_vector();
  out.push_back(rms);
  return out;
}

std::vector<double> distributed_sweep(int sweeps, int nranks,
                                      PartitionMethod method,
                                      apl::exec::Backend node_backend,
                                      std::uint64_t* halo_messages = nullptr) {
  DistHarness h;
  op2::Distributed dist(h.ctx, nranks, method, *h.nodes, h.x);
  dist.set_node_backend(node_backend);
  double rms = 0;
  for (int s = 0; s < sweeps; ++s) {
    dist.par_loop("zero", *h.nodes,
                  [](op2::Acc<double> r) { r[0] = 0; },
                  op2::arg(*h.res, Access::kWrite));
    dist.par_loop(
        "flux", *h.edges,
        [](op2::Acc<double> qa, op2::Acc<double> qb, op2::Acc<double> ra,
           op2::Acc<double> rb) {
          const double f = 0.25 * (qa[0] - qb[0]);
          ra[0] -= f;
          rb[0] += f;
        },
        op2::arg(*h.q, *h.e2n, 0, Access::kRead),
        op2::arg(*h.q, *h.e2n, 1, Access::kRead),
        op2::arg(*h.res, *h.e2n, 0, Access::kInc),
        op2::arg(*h.res, *h.e2n, 1, Access::kInc));
    dist.par_loop("apply", *h.nodes,
                  [](op2::Acc<double> q, op2::Acc<double> r,
                     op2::Acc<double> s) {
                    q[0] += r[0];
                    s[0] += r[0] * r[0];
                  },
                  op2::arg(*h.q, Access::kRW),
                  op2::arg(*h.res, Access::kRead),
                  op2::arg_gbl(&rms, 1, Access::kInc));
  }
  dist.fetch(*h.q);
  if (halo_messages) *halo_messages = dist.comm().traffic().messages();
  auto out = h.q->to_vector();
  out.push_back(rms);
  return out;
}

class DistEquivalence
    : public ::testing::TestWithParam<std::tuple<int, PartitionMethod>> {};

TEST_P(DistEquivalence, MatchesSequential) {
  const auto [nranks, method] = GetParam();
  const auto ref = reference_sweep(3);
  const auto got = distributed_sweep(3, nranks, method, apl::exec::Backend::kSeq);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-12 * (1 + std::abs(ref[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndMethods, DistEquivalence,
    ::testing::Values(std::make_tuple(1, PartitionMethod::kBlock),
                      std::make_tuple(2, PartitionMethod::kBlock),
                      std::make_tuple(3, PartitionMethod::kRcb),
                      std::make_tuple(4, PartitionMethod::kRcb),
                      std::make_tuple(4, PartitionMethod::kKway),
                      std::make_tuple(7, PartitionMethod::kKway)));

TEST(Distributed, HybridMpiThreadsMatchesSequential) {
  const auto ref = reference_sweep(2);
  const auto got =
      distributed_sweep(2, 3, PartitionMethod::kKway, apl::exec::Backend::kThreads);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-12 * (1 + std::abs(ref[i]))) << i;
  }
}

TEST(Distributed, HybridMpiCudaSimMatchesSequential) {
  const auto ref = reference_sweep(2);
  const auto got =
      distributed_sweep(2, 2, PartitionMethod::kRcb, apl::exec::Backend::kCudaSim);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-12 * (1 + std::abs(ref[i]))) << i;
  }
}

TEST(Distributed, SingleRankNeedsNoMessages) {
  std::uint64_t messages = ~0ull;
  distributed_sweep(2, 1, PartitionMethod::kBlock, apl::exec::Backend::kSeq,
                    &messages);
  EXPECT_EQ(messages, 0u);
}

TEST(Distributed, PartitionCoversEverythingOnce) {
  DistHarness h;
  op2::Distributed dist(h.ctx, 4, PartitionMethod::kKway, *h.nodes);
  index_t owned_nodes = 0, owned_edges = 0;
  for (int r = 0; r < 4; ++r) {
    owned_nodes += dist.owned_count(*h.nodes, r);
    owned_edges += dist.owned_count(*h.edges, r);
  }
  EXPECT_EQ(owned_nodes, h.nodes->size());
  EXPECT_EQ(owned_edges, h.edges->size());
}

TEST(Distributed, GhostCountsAreBoundarySized) {
  DistHarness h(16, 16);
  op2::Distributed dist(h.ctx, 4, PartitionMethod::kRcb, *h.nodes, h.x);
  // 2D decomposition of a 17x17 node grid into 4: the total ghost volume
  // should be a small multiple of the cut length, far below the set size.
  const index_t ghosts = dist.total_ghosts(*h.nodes);
  EXPECT_GT(ghosts, 0);
  EXPECT_LT(ghosts, h.nodes->size() / 2);
}

TEST(Distributed, OnDemandExchangeOnlyWhenDirty) {
  DistHarness h;
  op2::Distributed dist(h.ctx, 2, PartitionMethod::kRcb, *h.nodes, h.x);
  auto read_loop = [&] {
    dist.par_loop("gatheronly", *h.edges,
                  [](op2::Acc<double> qa, op2::Acc<double> len) {
                    len[0] += qa[0];
                  },
                  op2::arg(*h.q, *h.e2n, 0, Access::kRead),
                  op2::arg(*h.res, *h.e2n, 0, Access::kInc));
  };
  read_loop();
  const std::uint64_t after_first = dist.comm().traffic().messages();
  read_loop();  // q untouched since: its halo is clean, no new q exchange
  const std::uint64_t after_second = dist.comm().traffic().messages();
  // Second loop still flushes res increments but must not re-exchange q.
  // Count q-exchange messages as the difference beyond the flush traffic.
  dist.par_loop("touch_q", *h.nodes,
                [](op2::Acc<double> q) { q[0] += 1.0; },
                op2::arg(*h.q, Access::kRW));
  read_loop();  // q dirty again: exchange must happen
  const std::uint64_t after_third = dist.comm().traffic().messages();
  const std::uint64_t second_delta = after_second - after_first;
  const std::uint64_t third_delta = after_third - after_second;
  EXPECT_GT(third_delta, second_delta);
}

TEST(Distributed, MinMaxReductions) {
  DistHarness h;
  op2::Distributed dist(h.ctx, 3, PartitionMethod::kBlock, *h.nodes);
  double mn = 1e300, mx = -1e300;
  dist.par_loop("minmax", *h.nodes,
                [](op2::Acc<double> q, op2::Acc<double> lo,
                   op2::Acc<double> hi) {
                  lo[0] = std::min(lo[0], q[0]);
                  hi[0] = std::max(hi[0], q[0]);
                },
                op2::arg(*h.q, Access::kRead),
                op2::arg_gbl(&mn, 1, Access::kMin),
                op2::arg_gbl(&mx, 1, Access::kMax));
  EXPECT_EQ(mn, 1.0);
  EXPECT_EQ(mx, 7.0);
}

TEST(Distributed, RejectsIndirectWrite) {
  DistHarness h;
  op2::Distributed dist(h.ctx, 2, PartitionMethod::kBlock, *h.nodes);
  EXPECT_THROW(dist.par_loop("bad", *h.edges,
                             [](op2::Acc<double> q) { q[0] = 1; },
                             op2::arg(*h.q, *h.e2n, 0, Access::kWrite)),
               apl::Error);
}

TEST(Distributed, RejectsReadAndIncOfSameDat) {
  DistHarness h;
  op2::Distributed dist(h.ctx, 2, PartitionMethod::kBlock, *h.nodes);
  EXPECT_THROW(
      dist.par_loop("bad", *h.edges,
                    [](op2::Acc<double> a, op2::Acc<double> b) {
                      b[0] += a[0];
                    },
                    op2::arg(*h.q, *h.e2n, 0, Access::kRead),
                    op2::arg(*h.q, *h.e2n, 1, Access::kInc)),
      apl::Error);
}

TEST(Distributed, HaloBytesRecordedInProfile) {
  DistHarness h;
  op2::Distributed dist(h.ctx, 4, PartitionMethod::kRcb, *h.nodes, h.x);
  dist.par_loop("flux0", *h.edges,
                [](op2::Acc<double> qa, op2::Acc<double> ra) {
                  ra[0] += qa[0];
                },
                op2::arg(*h.q, *h.e2n, 0, Access::kRead),
                op2::arg(*h.res, *h.e2n, 1, Access::kInc));
  // The q halo was clean after scatter, so only the res flush moves bytes.
  const auto& s = h.ctx.profile().all().at("flux0");
  EXPECT_GT(s.halo_bytes, 0u);
}

TEST(Distributed, FetchRoundTripsScatter) {
  DistHarness h;
  const auto before = h.q->to_vector();
  op2::Distributed dist(h.ctx, 3, PartitionMethod::kKway, *h.nodes);
  dist.fetch(*h.q);
  EXPECT_EQ(h.q->to_vector(), before);
}

}  // namespace
