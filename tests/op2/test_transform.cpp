#include "op2/transform.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "apl/graph/csr.hpp"
#include "apl/rng.hpp"
#include "op2/op2.hpp"
#include "apl/testkit/fixtures.hpp"

namespace {

using apl::exec::Access;
using op2::index_t;

struct TransformFixture : ::testing::Test {
  void SetUp() override {
    mesh = apl::testkit::make_grid(7, 6);
    // Shuffle node numbering so RCM has something to improve.
    apl::SplitMix64 rng(17);
    std::vector<index_t> shuffle(mesh.num_nodes());
    std::iota(shuffle.begin(), shuffle.end(), 0);
    for (index_t i = mesh.num_nodes() - 1; i > 0; --i) {
      std::swap(shuffle[i],
                shuffle[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    }
    std::vector<index_t> e2n_table = mesh.edge2node;
    for (index_t& v : e2n_table) v = shuffle[v];
    std::vector<double> coords(mesh.node_coords.size());
    std::vector<double> qv(mesh.num_nodes());
    for (index_t v = 0; v < mesh.num_nodes(); ++v) {
      coords[2 * shuffle[v]] = mesh.node_coords[2 * v];
      coords[2 * shuffle[v] + 1] = mesh.node_coords[2 * v + 1];
      qv[shuffle[v]] = 1.0 + v % 5;
    }
    edges = &ctx.decl_set(mesh.num_edges(), "edges");
    nodes = &ctx.decl_set(mesh.num_nodes(), "nodes");
    e2n = &ctx.decl_map(*edges, *nodes, 2, e2n_table, "e2n");
    x = &ctx.decl_dat<double>(*nodes, 2, coords, "x");
    q = &ctx.decl_dat<double>(*nodes, 1, qv, "q");
    res = &ctx.decl_dat<double>(*nodes, 1, std::span<const double>{}, "res");
  }

  /// Edge sweep whose result is permutation-independent when gathered by
  /// coordinates: sums |dx|+|dy|-weighted q of neighbours into res.
  void run_sweep() {
    op2::par_loop(
        ctx, "sweep", *edges,
        [](op2::Acc<double> xa, op2::Acc<double> xb, op2::Acc<double> qa,
           op2::Acc<double> qb, op2::Acc<double> ra, op2::Acc<double> rb) {
          const double w = std::abs(xa[0] - xb[0]) + 2 * std::abs(xa[1] - xb[1]);
          ra[0] += w * qb[0];
          rb[0] += w * qa[0];
        },
        op2::arg(*x, *e2n, 0, Access::kRead),
        op2::arg(*x, *e2n, 1, Access::kRead),
        op2::arg(*q, *e2n, 0, Access::kRead),
        op2::arg(*q, *e2n, 1, Access::kRead),
        op2::arg(*res, *e2n, 0, Access::kInc),
        op2::arg(*res, *e2n, 1, Access::kInc));
  }

  /// res values keyed by node coordinates (permutation-invariant view).
  std::vector<std::pair<std::pair<double, double>, double>> keyed_result() {
    std::vector<std::pair<std::pair<double, double>, double>> out;
    const auto xv = x->to_vector();
    const auto rv = res->to_vector();
    for (index_t v = 0; v < nodes->size(); ++v) {
      out.push_back({{xv[2 * v], xv[2 * v + 1]}, rv[v]});
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  apl::testkit::GridMesh mesh;
  op2::Context ctx;
  op2::Set* edges;
  op2::Set* nodes;
  op2::Map* e2n;
  op2::Dat<double>* x;
  op2::Dat<double>* q;
  op2::Dat<double>* res;
};

TEST_F(TransformFixture, RenumberingPreservesResults) {
  run_sweep();
  const auto before = keyed_result();

  // Reset res, renumber the mesh, rerun: identical keyed results.
  op2::par_loop(ctx, "zero", *nodes, [](op2::Acc<double> r) { r[0] = 0; },
                op2::arg(*res, Access::kWrite));
  op2::renumber_mesh(ctx, *e2n);
  run_sweep();
  const auto after = keyed_result();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].first, after[i].first);
    EXPECT_NEAR(before[i].second, after[i].second, 1e-12);
  }
}

TEST_F(TransformFixture, RcmReducesMapBandwidth) {
  auto bandwidth_of = [&] {
    index_t bw = 0;
    for (index_t e = 0; e < edges->size(); ++e) {
      bw = std::max(bw, static_cast<index_t>(
                            std::abs(e2n->at(e, 0) - e2n->at(e, 1))));
    }
    return bw;
  };
  const index_t before = bandwidth_of();
  ctx.apply_permutation(*nodes, op2::rcm_permutation_for(ctx, *e2n));
  const index_t after = bandwidth_of();
  EXPECT_LT(after, before);
  EXPECT_LE(after, 3 * 8);  // near the grid's natural bandwidth
}

TEST_F(TransformFixture, SortByMapImprovesSourceLocality) {
  ctx.apply_permutation(*nodes, op2::rcm_permutation_for(ctx, *e2n));
  ctx.apply_permutation(*edges, op2::sort_by_map_permutation(ctx, *e2n));
  // After sorting, consecutive edges reference monotonically non-decreasing
  // minimum endpoints.
  index_t prev = -1;
  for (index_t e = 0; e < edges->size(); ++e) {
    const index_t lo = std::min(e2n->at(e, 0), e2n->at(e, 1));
    EXPECT_GE(lo, prev);
    prev = lo;
  }
}

TEST_F(TransformFixture, PermutationValidationRejectsGarbage) {
  std::vector<index_t> not_a_perm(nodes->size(), 0);
  EXPECT_THROW(ctx.apply_permutation(*nodes, not_a_perm), apl::Error);
  std::vector<index_t> wrong_size = {0, 1};
  EXPECT_THROW(ctx.apply_permutation(*nodes, wrong_size), apl::Error);
}

TEST_F(TransformFixture, LayoutConversionPreservesLoopResults) {
  run_sweep();
  const auto before = keyed_result();
  op2::par_loop(ctx, "zero", *nodes, [](op2::Acc<double> r) { r[0] = 0; },
                op2::arg(*res, Access::kWrite));
  ctx.convert_layout(op2::Layout::kSoA);
  run_sweep();
  const auto after = keyed_result();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i].second, after[i].second, 1e-12);
  }
}

TEST_F(TransformFixture, RenumberingKeepsDatMapConsistency) {
  // After renumbering, x through the map must still give unit-length edges.
  op2::renumber_mesh(ctx, *e2n);
  for (index_t e = 0; e < edges->size(); ++e) {
    const double* a = x->entry(e2n->at(e, 0));
    const double* b = x->entry(e2n->at(e, 1));
    const auto s = x->stride();
    const double len =
        std::abs(a[0] - b[0]) + std::abs(a[s] - b[s]);
    EXPECT_EQ(len, 1.0) << "edge " << e;
  }
}

}  // namespace
