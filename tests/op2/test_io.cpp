// Dataset and mesh I/O (paper Fig. 1 and Sec. II-C): declare-from-file,
// dump/load of all datasets, and distributed dumping.
#include "op2/io.hpp"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "airfoil/airfoil.hpp"
#include "airfoil/mesh.hpp"

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(OpIo, MeshSaveLoadRoundTrip) {
  const std::string path = temp_path("airfoil_mesh.h5l");
  const auto m = airfoil::make_bump_channel(12, 6, 0.07);
  airfoil::save_mesh(m, path);
  const auto l = airfoil::load_mesh(path);
  EXPECT_EQ(l.ncell, m.ncell);
  EXPECT_EQ(l.nedge, m.nedge);
  EXPECT_EQ(l.x, m.x);
  EXPECT_EQ(l.edge2cell, m.edge2cell);
  EXPECT_EQ(l.bound, m.bound);
  std::remove(path.c_str());
}

TEST(OpIo, DeclareApplicationFromMeshFile) {
  // The Fig. 1 flow: generate + save a mesh, then run the application
  // from the loaded file; results must match the in-memory path.
  const std::string path = temp_path("airfoil_mesh2.h5l");
  airfoil::Airfoil::Options opts;
  opts.nx = 16;
  opts.ny = 8;
  airfoil::save_mesh(airfoil::make_bump_channel(opts.nx, opts.ny, opts.bump),
                     path);

  airfoil::Airfoil direct(opts);
  airfoil::Airfoil from_file(airfoil::load_mesh(path), opts);
  EXPECT_DOUBLE_EQ(from_file.run(5), direct.run(5));
  std::remove(path.c_str());
}

TEST(OpIo, DumpAndLoadAllDats) {
  airfoil::Airfoil::Options opts;
  opts.nx = 12;
  opts.ny = 6;
  airfoil::Airfoil app(opts);
  app.run(3);
  apl::io::File file;
  op2::dump_dats(app.ctx(), file);
  EXPECT_TRUE(file.contains("dat/q"));
  EXPECT_TRUE(file.contains("dat/x"));
  EXPECT_TRUE(file.contains("dat/bound"));

  // Restore into a fresh application: states must match exactly.
  airfoil::Airfoil fresh(opts);
  op2::load_dats(fresh.ctx(), file);
  EXPECT_EQ(fresh.ctx().find_dat("q")->raw() == nullptr, false);
  const auto a = app.solution();
  const auto b = fresh.solution();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  // And the restored run continues identically.
  EXPECT_DOUBLE_EQ(fresh.run(2), app.run(2));
}

TEST(OpIo, DistributedDumpMatchesSequential) {
  airfoil::Airfoil::Options opts;
  opts.nx = 16;
  opts.ny = 8;
  airfoil::Airfoil seq_app(opts);
  seq_app.run(4);
  apl::io::File seq_file;
  op2::dump_dats(seq_app.ctx(), seq_file);

  airfoil::Airfoil dist_app(opts);
  dist_app.enable_distributed(3, apl::graph::PartitionMethod::kKway);
  dist_app.run(4);
  apl::io::File dist_file;
  op2::dump_dats(*dist_app.distributed(), dist_file);

  const auto a = seq_file.get<std::uint8_t>("dat/q");
  const auto b = dist_file.get<std::uint8_t>("dat/q");
  ASSERT_EQ(a.size(), b.size());
  // Compare as doubles with tolerance (distributed summation order).
  const double* da = reinterpret_cast<const double*>(a.data());
  const double* db = reinterpret_cast<const double*>(b.data());
  for (std::size_t i = 0; i < a.size() / sizeof(double); ++i) {
    ASSERT_NEAR(da[i], db[i], 1e-10 * (1 + std::abs(da[i]))) << i;
  }
}

TEST(OpIo, LoadSkipsUnknownAndChecksSizes) {
  airfoil::Airfoil app;
  apl::io::File file;
  file.put<std::uint8_t>("dat/not_a_dat", std::vector<std::uint8_t>{1, 2},
                         {2});
  EXPECT_NO_THROW(op2::load_dats(app.ctx(), file));  // unknown name skipped
  file.put<std::uint8_t>("dat/q", std::vector<std::uint8_t>{1, 2}, {2});
  EXPECT_THROW(op2::load_dats(app.ctx(), file), apl::Error);  // bad size
}

}  // namespace
