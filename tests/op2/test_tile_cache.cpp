// OP2 tile-schedule IR and cache (sparse tiling, DESIGN.md §15): codec
// round trips, decode validation against the live chain (single-bit-flip
// robustness sweep included), the race/dependence audit, plan_for
// memoization, the warm-start differential (zero inspector runs on the
// warm side, bitwise-identical results), IR-version partitioning, and the
// corrupt-entry fallback to a fresh inspection with a named diagnostic.
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apl/fault.hpp"
#include "apl/io/plan_cache.hpp"
#include "apl/trace.hpp"
#include "op2/op2.hpp"

namespace {

using apl::exec::Access;
using apl::plan_cache::Store;
using apl::trace::Recorder;

constexpr op2::index_t kNodes = 40;
constexpr op2::index_t kEdges = 39;

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Scoped cache directory on the global store; restores the disabled
/// default on exit so other tests stay cache-free.
struct CacheDir {
  explicit CacheDir(const std::string& name)
      : dir((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(dir);
    Store::global().set_directory(dir);
  }
  ~CacheDir() {
    Store::global().set_directory("");
    std::filesystem::remove_all(dir);
  }
  std::string dir;
};

/// A 1D node chain with an edge set over it — small, but with real
/// producer->indirect-consumer edges so tiles must genuinely skew.
struct LazySys {
  op2::Context ctx;
  op2::Set* nodes = nullptr;
  op2::Set* edges = nullptr;
  op2::Map* e2n = nullptr;
  op2::Dat<double>* x = nullptr;
  op2::Dat<double>* y = nullptr;
};

std::unique_ptr<LazySys> build_sys() {
  auto s = std::make_unique<LazySys>();
  // kAccess guarding is a flush point (par_loop runs eagerly under it),
  // which would bypass the chain machinery these tests exercise.
  s->ctx.set_verify(s->ctx.verify_checks() & ~apl::verify::kAccess);
  s->nodes = &s->ctx.decl_set(kNodes, "nodes");
  s->edges = &s->ctx.decl_set(kEdges, "edges");
  std::vector<op2::index_t> table(2 * kEdges);
  for (op2::index_t e = 0; e < kEdges; ++e) {
    table[2 * e] = e;
    table[2 * e + 1] = e + 1;
  }
  s->e2n = &s->ctx.decl_map(*s->edges, *s->nodes, 2, table, "e2n");
  std::vector<double> xi(kNodes), yi(kEdges, 0.0);
  for (op2::index_t i = 0; i < kNodes; ++i) {
    xi[static_cast<std::size_t>(i)] = 0.5 + 0.01 * static_cast<double>(i);
  }
  s->x = &s->ctx.decl_dat<double>(*s->nodes, 1, xi, "x");
  s->y = &s->ctx.decl_dat<double>(*s->edges, 1, yi, "y");
  return s;
}

/// Three steps of relax -> gather -> scatter with no flush in between: a
/// 9-loop chain whose cross-loop dependences run both directions through
/// the map. Returns x ++ y after the final flush.
std::vector<double> run_program(bool lazy, op2::index_t tile = 5) {
  auto s = build_sys();
  if (tile > 0) s->ctx.set_tile_size(tile);
  if (lazy) s->ctx.set_lazy(true);
  for (int step = 0; step < 3; ++step) {
    op2::par_loop(
        s->ctx, "relax", *s->nodes,
        [](op2::Acc<double> v) { v[0] = 0.5 * v[0] + 0.25; },
        op2::arg(*s->x, Access::kRW));
    op2::par_loop(
        s->ctx, "gather", *s->edges,
        [](op2::Acc<double> w, op2::Acc<double> a, op2::Acc<double> b) {
          w[0] = a[0] + b[0];
        },
        op2::arg(*s->y, Access::kWrite), op2::arg(*s->x, *s->e2n, 0, Access::kRead),
        op2::arg(*s->x, *s->e2n, 1, Access::kRead));
    op2::par_loop(
        s->ctx, "scatter", *s->edges,
        [](op2::Acc<double> w, op2::Acc<double> a, op2::Acc<double> b) {
          a[0] += 0.125 * w[0];
          b[0] += 0.125 * w[0];
        },
        op2::arg(*s->y, Access::kRead), op2::arg(*s->x, *s->e2n, 0, Access::kInc),
        op2::arg(*s->x, *s->e2n, 1, Access::kInc));
  }
  s->ctx.flush();
  std::vector<double> out = s->x->to_vector();
  const std::vector<double> ye = s->y->to_vector();
  out.insert(out.end(), ye.begin(), ye.end());
  return out;
}

/// The same three loops as inspector input only (no executors needed).
std::vector<op2::LoopRecord> synthetic_chain(LazySys& s) {
  auto rec = [](const char* name, const op2::Set* set,
                std::vector<op2::ArgInfo> infos) {
    op2::LoopRecord r;
    r.name = name;
    r.set = set;
    r.n = set->size();
    r.infos = std::move(infos);
    return r;
  };
  const op2::ArgInfo x_rw{s.x->id(), -1, 0, Access::kRW, 1,
                          sizeof(double), false};
  const op2::ArgInfo y_w{s.y->id(), -1, 0, Access::kWrite, 1,
                         sizeof(double), false};
  const op2::ArgInfo y_r{s.y->id(), -1, 0, Access::kRead, 1,
                         sizeof(double), false};
  const op2::ArgInfo x_r0{s.x->id(), s.e2n->id(), 0, Access::kRead, 1,
                          sizeof(double), false};
  const op2::ArgInfo x_r1{s.x->id(), s.e2n->id(), 1, Access::kRead, 1,
                          sizeof(double), false};
  const op2::ArgInfo x_i0{s.x->id(), s.e2n->id(), 0, Access::kInc, 1,
                          sizeof(double), false};
  const op2::ArgInfo x_i1{s.x->id(), s.e2n->id(), 1, Access::kInc, 1,
                          sizeof(double), false};
  std::vector<op2::LoopRecord> chain;
  chain.push_back(rec("relax", s.nodes, {x_rw}));
  chain.push_back(rec("gather", s.edges, {y_w, x_r0, x_r1}));
  chain.push_back(rec("scatter", s.edges, {y_r, x_i0, x_i1}));
  return chain;
}

// ---- inspector + audit ------------------------------------------------------

TEST(TileSchedule, InspectorBuildsFusedMonotoneSchedule) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  const auto chain = synthetic_chain(*s);
  const op2::TileSchedule sched =
      op2::detail::build_tile_schedule(s->ctx, chain);
  ASSERT_TRUE(sched.fused);
  EXPECT_EQ(sched.ntiles, (kNodes + 4) / 5);
  ASSERT_EQ(sched.bounds.size(), chain.size());
  for (std::size_t l = 0; l < chain.size(); ++l) {
    const auto& b = sched.bounds[l];
    ASSERT_EQ(b.size(), static_cast<std::size_t>(sched.ntiles) + 1);
    EXPECT_EQ(b.front(), 0);
    EXPECT_EQ(b.back(), chain[l].n);
    for (std::size_t t = 1; t < b.size(); ++t) EXPECT_LE(b[t - 1], b[t]);
  }
  EXPECT_GT(sched.ncolors, 0);
  EXPECT_EQ(op2::audit_tile_schedule(s->ctx, chain, sched), "");
}

TEST(TileSchedule, AuditCatchesDoctoredBounds) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  const auto chain = synthetic_chain(*s);
  op2::TileSchedule sched = op2::detail::build_tile_schedule(s->ctx, chain);
  ASSERT_TRUE(sched.fused);
  // Pull every element of the consuming gather into tile 0: it now reads
  // x entries the relax loop writes in later tiles — the exact violation
  // the wavefront constraint forbids. The audit must name the sinner.
  for (std::size_t t = 1; t + 1 < sched.bounds[1].size(); ++t) {
    sched.bounds[1][t] = chain[1].n;
  }
  const std::string diag = op2::audit_tile_schedule(s->ctx, chain, sched);
  ASSERT_FALSE(diag.empty());
  EXPECT_NE(diag.find("gather"), std::string::npos) << diag;
  EXPECT_NE(diag.find("x"), std::string::npos) << diag;
}

// ---- schedule IR codec ------------------------------------------------------

TEST(TileSchedule, EncodeDecodeRoundTrip) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  const auto chain = synthetic_chain(*s);
  const op2::TileSchedule sched =
      op2::detail::build_tile_schedule(s->ctx, chain);

  const auto payload = op2::encode_tile_schedule(sched);
  std::string diag;
  const auto back = op2::decode_tile_schedule(payload, chain, &diag);
  ASSERT_TRUE(back.has_value()) << diag;
  EXPECT_EQ(back->fused, sched.fused);
  EXPECT_EQ(back->ntiles, sched.ntiles);
  EXPECT_EQ(back->ncolors, sched.ncolors);
  EXPECT_EQ(back->loop_n, sched.loop_n);
  EXPECT_EQ(back->bounds, sched.bounds);
  EXPECT_EQ(back->colors, sched.colors);
  EXPECT_EQ(back->eager_bytes, sched.eager_bytes);
  EXPECT_EQ(back->fused_bytes, sched.fused_bytes);
}

TEST(TileSchedule, DecodeRejectsWrongChain) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  auto chain = synthetic_chain(*s);
  const auto payload = op2::encode_tile_schedule(
      op2::detail::build_tile_schedule(s->ctx, chain));
  chain.pop_back();
  std::string diag;
  EXPECT_FALSE(op2::decode_tile_schedule(payload, chain, &diag));
  EXPECT_NE(diag.find("op2chain-ir:"), std::string::npos) << diag;
}

TEST(TileSchedule, DecodeSurvivesSingleBitFlips) {
  // Robustness sweep: no single-bit corruption of the payload may crash
  // the decoder — each flip either still decodes (the bit was in a stats
  // field) or rejects with a named diagnostic.
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  const auto chain = synthetic_chain(*s);
  const auto payload = op2::encode_tile_schedule(
      op2::detail::build_tile_schedule(s->ctx, chain));
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    auto bad = payload;
    bad[i] ^= 0x40;
    std::string diag;
    if (!op2::decode_tile_schedule(bad, chain, &diag)) {
      ++rejected;
      EXPECT_FALSE(diag.empty())
          << "rejection without diagnostic at byte " << i;
    }
  }
  EXPECT_GT(rejected, 0u);
}

// ---- plan_for memoization ---------------------------------------------------

TEST(TileSchedule, PlanForMemoizesBySignature) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  const auto chain = synthetic_chain(*s);
  const op2::TileSchedule& s1 = s->ctx.plan_for({"op2chain", &chain});
  const op2::TileSchedule& s2 = s->ctx.plan_for({"op2chain", &chain});
  EXPECT_EQ(&s1, &s2);
  EXPECT_NE(s1.signature, 0u);
  const auto sig1 = s1.signature;

  // A config change (tile size) invalidates the memo and re-keys.
  s->ctx.set_tile_size(7);
  const op2::TileSchedule& s3 = s->ctx.plan_for({"op2chain", &chain});
  EXPECT_NE(s3.signature, sig1);
}

// ---- warm start -------------------------------------------------------------

TEST(TileCacheWarm, WarmRunSkipsInspectionAndMatchesCold) {
  CacheDir cache("op2_tile_warm_cache");

  // The differential anchor: eager and lazy-tiled agree bitwise even
  // before any cache enters the picture.
  const std::vector<double> eager = run_program(false);
  const std::vector<double> cold = run_program(true);
  EXPECT_TRUE(bitwise_equal(eager, cold))
      << "lazy-tiled diverged from eager";
  const auto cold_stats = Store::global().stats();
  ASSERT_GT(cold_stats.stores, 0u);

  // Warm: a fresh context must perform zero chain inspection — proved
  // through the trace spans, not just the store counters.
  Store::global().reset_stats();
  Recorder::global().clear();
  Recorder::global().set_enabled(true);
  const std::vector<double> warm = run_program(true);
  Recorder::global().set_enabled(false);
  const auto evs = Recorder::global().snapshot();
  Recorder::global().clear();

  std::size_t analyzed = 0, hits = 0;
  for (const auto& e : evs) {
    if (e.name.rfind("chain_analyze:op2chain", 0) == 0) ++analyzed;
    if (e.name.rfind("chain_hit:op2chain", 0) == 0) ++hits;
  }
  EXPECT_EQ(analyzed, 0u) << "warm start re-ran the inspector";
  EXPECT_GT(hits, 0u);

  const auto warm_stats = Store::global().stats();
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_EQ(warm_stats.corrupt, 0u);
  EXPECT_TRUE(bitwise_equal(cold, warm))
      << "warm start diverged from cold run";
}

// ---- IR versioning ----------------------------------------------------------

TEST(TileCacheWarm, IrVersionPartitionsEntries) {
  // v3 is the bump that made tile colors layered execution rounds (v2
  // shipped the op2chain kind, section tags 16-19); both op2 IR kinds
  // share the constant, so bumping it invalidates every persisted
  // schedule at once.
  EXPECT_EQ(op2::kPlanIrVersion, 3u);

  CacheDir cache("op2_tile_version_cache");
  apl::plan_cache::Key key;
  key.kind = "op2chain";
  key.topology = 0x10;
  key.program = 0x20;
  key.config = 0x30;
  key.version = op2::kPlanIrVersion;
  key.label = "op2chain";
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  Store::global().save(key, payload);
  ASSERT_TRUE(Store::global().load(key).has_value());

  // The same schedule under a bumped IR version must miss: stale-format
  // entries are invisible, never misdecoded.
  key.version = op2::kPlanIrVersion + 1;
  EXPECT_FALSE(Store::global().load(key).has_value());
  EXPECT_GT(Store::global().stats().misses, 0u);
}

// ---- corruption fallback ----------------------------------------------------

TEST(TileCacheWarm, CorruptEntryFallsBackToFreshInspection) {
  CacheDir cache("op2_tile_corrupt_cache");

  // Baseline without any cache interference.
  Store::global().set_directory("");
  const std::vector<double> baseline = run_program(true);

  // Cold populate with the corrupt_plan_cache trigger armed: the first
  // persisted blob carries a flipped payload bit past its CRC.
  Store::global().set_directory(cache.dir);
  apl::fault::Injector::global().arm(
      apl::fault::parse_config("corrupt_plan_cache=4"));
  const std::vector<double> cold = run_program(true);
  apl::fault::Injector::global().disarm();
  EXPECT_TRUE(bitwise_equal(baseline, cold));

  // Warm: the poisoned entry surfaces as a named corrupt-miss, the chain
  // re-inspects fresh, and results never change.
  Store::global().reset_stats();
  const std::vector<double> warm = run_program(true);
  const auto stats = Store::global().stats();
  EXPECT_GE(stats.corrupt, 1u) << "corruption not detected";
  EXPECT_FALSE(Store::global().last_diagnostic().empty());
  EXPECT_TRUE(bitwise_equal(baseline, warm))
      << "corrupt cache entry altered results";
}

}  // namespace
