// Checkpointing tests: the Fig. 8 classification algorithm on an
// Airfoil-shaped loop chain, speculative entry deferral, and full
// crash/restart equivalence on a real mini-application.
#include "op2/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "op2/op2.hpp"
#include "apl/testkit/fixtures.hpp"

namespace {

using apl::exec::Access;
using op2::index_t;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- A miniature Airfoil with the paper's access structure ---------------
//
// Loops per iteration (Fig. 8): save_soln, then 2 x (adt_calc, res_calc,
// bres_calc, update). Dats: bounds(1, never written), x(2, never written),
// q(4), q_old(4), adt(1), res(4); rms is a global.
struct MiniAirfoil {
  explicit MiniAirfoil(index_t nx = 4, index_t ny = 4)
      : mesh(apl::testkit::make_grid(nx, ny)) {
    cells = &ctx.decl_set(mesh.num_edges(), "cells");  // any indirect set
    nodes = &ctx.decl_set(mesh.num_nodes(), "nodes");
    c2n = &ctx.decl_map(*cells, *nodes, 2, mesh.edge2node, "c2n");
    bounds = &ctx.decl_dat<double>(*nodes, 1, std::span<const double>{},
                                   "bounds");
    x = &ctx.decl_dat<double>(*nodes, 2, mesh.node_coords, "x");
    std::vector<double> qi(static_cast<std::size_t>(mesh.num_nodes()) * 4);
    for (std::size_t i = 0; i < qi.size(); ++i) qi[i] = 1.0 + i % 3;
    q = &ctx.decl_dat<double>(*nodes, 4, qi, "q");
    q_old = &ctx.decl_dat<double>(*nodes, 4, std::span<const double>{},
                                  "q_old");
    adt = &ctx.decl_dat<double>(*nodes, 1, std::span<const double>{}, "adt");
    res = &ctx.decl_dat<double>(*nodes, 4, std::span<const double>{}, "res");
  }

  void save_soln() {
    op2::par_loop(ctx, "save_soln", *nodes,
                  [](op2::Acc<double> q, op2::Acc<double> qo) {
                    for (int d = 0; d < 4; ++d) qo[d] = q[d];
                  },
                  op2::arg(*q, Access::kRead),
                  op2::arg(*q_old, Access::kWrite));
  }
  void adt_calc() {
    op2::par_loop(ctx, "adt_calc", *nodes,
                  [](op2::Acc<double> x, op2::Acc<double> q,
                     op2::Acc<double> a) {
                    a[0] = 0.125 * (x[0] + x[1]) + 0.0625 * q[0];
                  },
                  op2::arg(*x, Access::kRead), op2::arg(*q, Access::kRead),
                  op2::arg(*adt, Access::kWrite));
  }
  void res_calc() {
    op2::par_loop(
        ctx, "res_calc", *cells,
        [](op2::Acc<double> xa, op2::Acc<double> qa, op2::Acc<double> aa,
           op2::Acc<double> ra, op2::Acc<double> rb) {
          const double f = 0.5 * (xa[0] + qa[1]) - aa[0];
          for (int d = 0; d < 4; ++d) {
            ra[d] += f * 0.25;
            rb[d] -= f * 0.25;
          }
        },
        op2::arg(*x, *c2n, 0, Access::kRead),
        op2::arg(*q, *c2n, 0, Access::kRead),
        op2::arg(*adt, *c2n, 1, Access::kRead),
        op2::arg(*res, *c2n, 0, Access::kInc),
        op2::arg(*res, *c2n, 1, Access::kInc));
  }
  void bres_calc() {
    op2::par_loop(ctx, "bres_calc", *nodes,
                  [](op2::Acc<double> b, op2::Acc<double> q,
                     op2::Acc<double> a, op2::Acc<double> r) {
                    r[0] += b[0] * (q[0] - a[0]) * 0.125;
                  },
                  op2::arg(*bounds, Access::kRead),
                  op2::arg(*q, Access::kRead), op2::arg(*adt, Access::kRead),
                  op2::arg(*res, Access::kInc));
  }
  void update() {
    op2::par_loop(ctx, "update", *nodes,
                  [](op2::Acc<double> qo, op2::Acc<double> r,
                     op2::Acc<double> q, op2::Acc<double> rms) {
                    for (int d = 0; d < 4; ++d) {
                      q[d] = qo[d] + 0.1 * r[d];
                      rms[0] += r[d] * r[d];
                      r[d] = 0.0;
                    }
                  },
                  op2::arg(*q_old, Access::kRead),
                  op2::arg(*res, Access::kRW), op2::arg(*q, Access::kWrite),
                  op2::arg_gbl(&rms, 1, Access::kInc));
  }
  void iteration() {
    save_soln();
    for (int stage = 0; stage < 2; ++stage) {
      adt_calc();
      res_calc();
      bres_calc();
      update();
    }
  }

  apl::testkit::GridMesh mesh;
  op2::Context ctx;
  op2::Set* cells;
  op2::Set* nodes;
  op2::Map* c2n;
  op2::Dat<double>* bounds;
  op2::Dat<double>* x;
  op2::Dat<double>* q;
  op2::Dat<double>* q_old;
  op2::Dat<double>* adt;
  op2::Dat<double>* res;
  double rms = 0.0;
};

// ---- Fig. 8 classification ----------------------------------------------

TEST(CheckpointFig8, UnitsPerEntryPointMatchPaper) {
  MiniAirfoil app;
  op2::Checkpointer ck(app.ctx, temp_path("fig8_unused.ckpt"));
  for (int it = 0; it < 2; ++it) app.iteration();  // 18 recorded loops
  // Fig. 8 column "units of data saved if entering checkpointing mode
  // here" in steady state (all working datasets already modified), one
  // full iteration starting at position 9:
  //   save_soln 8, adt_calc 12, res_calc 13, bres_calc 13, update 8,
  //   adt_calc 12, res_calc 13, bres_calc 13.
  const index_t expect[8] = {8, 12, 13, 13, 8, 12, 13, 13};
  for (index_t i = 0; i < 8; ++i) {
    const auto units = ck.units_if_entering_at(9 + i);
    ASSERT_TRUE(units.has_value()) << "pos " << 9 + i;
    EXPECT_EQ(*units, expect[i]) << "pos " << 9 + i;
  }
  // The final recorded loop has insufficient lookahead to classify adt:
  // Fig. 8's "unknown yet".
  EXPECT_FALSE(ck.units_if_entering_at(17).has_value());
  // At application start nothing has been modified, so a checkpoint there
  // is free — initial data is regenerated by the restarted application.
  EXPECT_EQ(ck.units_if_entering_at(0).value_or(-1), 0);
}

TEST(CheckpointFig8, NeverModifiedDatsNotSaved) {
  MiniAirfoil app;
  op2::Checkpointer ck(app.ctx, temp_path("fig8_unused2.ckpt"));
  for (int it = 0; it < 2; ++it) app.iteration();
  for (index_t pos = 0; pos < 9; ++pos) {
    for (index_t d : ck.datasets_saved_at(pos)) {
      EXPECT_NE(app.ctx.dat(d).name(), "x");
      EXPECT_NE(app.ctx.dat(d).name(), "bounds");
    }
  }
}

TEST(CheckpointFig8, EntryAtSaveSolnSavesQandRes) {
  MiniAirfoil app;
  op2::Checkpointer ck(app.ctx, temp_path("fig8_unused3.ckpt"));
  for (int it = 0; it < 2; ++it) app.iteration();
  std::vector<std::string> names;
  for (index_t d : ck.datasets_saved_at(9)) {  // save_soln, steady state
    names.push_back(app.ctx.dat(d).name());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"q", "res"}));
}

TEST(CheckpointFig8, PeriodDetection) {
  MiniAirfoil app;
  op2::Checkpointer ck(app.ctx, temp_path("fig8_unused4.ckpt"));
  for (int it = 0; it < 3; ++it) app.iteration();
  // One iteration = 1 + 2*4 = 9 loops.
  EXPECT_EQ(ck.detect_period(), 9);
}

TEST(CheckpointFig8, NonPeriodicChainHasNoPeriod) {
  MiniAirfoil app;
  op2::Checkpointer ck(app.ctx, temp_path("fig8_unused5.ckpt"));
  app.save_soln();
  app.adt_calc();
  app.update();
  EXPECT_EQ(ck.detect_period(), 0);
}

TEST(CheckpointSpeculative, DefersToCheapestPhase) {
  MiniAirfoil app;
  const std::string path = temp_path("spec.ckpt");
  op2::Checkpointer ck(app.ctx, path);
  for (int it = 0; it < 2; ++it) app.iteration();
  // Trigger right before an expensive phase (next loop is res_calc, 13
  // units); speculative mode should wait for an 8-unit phase.
  app.save_soln();
  app.adt_calc();  // positions 18,19; next call would be res_calc
  ck.request_checkpoint();
  app.res_calc();
  app.bres_calc();
  EXPECT_FALSE(ck.checkpoint_complete());
  app.update();  // 8-unit phase reached: enters and saves progressively
  app.adt_calc();
  app.res_calc();
  app.bres_calc();
  app.update();
  app.iteration();
  EXPECT_TRUE(ck.checkpoint_complete());
  std::remove(path.c_str());
}

TEST(CheckpointSpeculative, ImmediateModeEntersAtNextLoop) {
  MiniAirfoil app;
  const std::string path = temp_path("imm.ckpt");
  op2::Checkpointer::Options opts;
  opts.speculative = false;
  op2::Checkpointer ck(app.ctx, path, opts);
  app.iteration();
  ck.request_checkpoint();
  app.iteration();
  app.iteration();
  EXPECT_TRUE(ck.checkpoint_complete());
  std::remove(path.c_str());
}

// ---- full crash/restart equivalence --------------------------------------

std::vector<double> run_to_completion(int total_iters) {
  MiniAirfoil app;
  for (int it = 0; it < total_iters; ++it) app.iteration();
  auto out = app.q->to_vector();
  out.push_back(app.rms);
  return out;
}

TEST(CheckpointRestart, RestartReproducesUninterruptedRun) {
  const std::string path = temp_path("restart.ckpt");
  const int total_iters = 6;
  const auto reference = run_to_completion(total_iters);

  // Run 1: checkpoint after iteration 3, then "crash".
  {
    MiniAirfoil app;
    op2::Checkpointer ck(app.ctx, path);
    for (int it = 0; it < 3; ++it) app.iteration();
    ck.request_checkpoint();
    app.iteration();
    app.iteration();  // give the speculative save room to complete
    ASSERT_TRUE(ck.checkpoint_complete());
    // crash: app destroyed here
  }

  // Run 2: restart from the file; the application code is identical.
  {
    MiniAirfoil app;
    op2::Checkpointer ck =
        op2::Checkpointer::restore(app.ctx, path);
    for (int it = 0; it < total_iters; ++it) app.iteration();
    EXPECT_FALSE(ck.replaying());
    auto out = app.q->to_vector();
    out.push_back(app.rms);
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i], reference[i]) << "index " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointRestart, ReplayRestoresGlobalReductions) {
  const std::string path = temp_path("restart_gbl.ckpt");
  double rms_at_checkpoint = 0.0;
  {
    MiniAirfoil app;
    op2::Checkpointer ck(app.ctx, path);
    for (int it = 0; it < 2; ++it) app.iteration();
    ck.request_checkpoint();
    app.iteration();
    app.iteration();
    ASSERT_TRUE(ck.checkpoint_complete());
    rms_at_checkpoint = app.rms;  // beyond the entry, but fine as a marker
  }
  {
    MiniAirfoil app;
    op2::Checkpointer ck = op2::Checkpointer::restore(app.ctx, path);
    for (int it = 0; it < 4; ++it) app.iteration();
    EXPECT_DOUBLE_EQ(app.rms, rms_at_checkpoint);
  }
  std::remove(path.c_str());
}

TEST(CheckpointRestart, DivergentReplaySequenceFails) {
  const std::string path = temp_path("restart_diverge.ckpt");
  {
    MiniAirfoil app;
    op2::Checkpointer ck(app.ctx, path);
    for (int it = 0; it < 3; ++it) app.iteration();
    ck.request_checkpoint();
    app.iteration();
    app.iteration();
    ASSERT_TRUE(ck.checkpoint_complete());
  }
  {
    MiniAirfoil app;
    op2::Checkpointer ck = op2::Checkpointer::restore(app.ctx, path);
    // Issue a different loop sequence than the recorded one.
    EXPECT_THROW(app.update(), apl::Error);
  }
  std::remove(path.c_str());
}

}  // namespace
