// Shared mesh builders for the OP2 tests: a 2D structured quad grid exposed
// through the unstructured API (cells, edges, vertices + maps), which gives
// indirect loops with real conflicts while keeping expected values easy to
// compute.
#pragma once

#include <vector>

#include "op2/op2.hpp"

namespace op2_test {

struct GridMesh {
  op2::index_t nx = 0, ny = 0;
  // Raw tables (owned here; Context copies them on declaration).
  std::vector<op2::index_t> edge2node;
  std::vector<double> node_coords;

  op2::index_t num_nodes() const { return (nx + 1) * (ny + 1); }
  op2::index_t num_edges() const {
    return nx * (ny + 1) + (nx + 1) * ny;
  }
  op2::index_t node_id(op2::index_t x, op2::index_t y) const {
    return y * (nx + 1) + x;
  }
};

/// Builds the edge->node connectivity and coordinates of an nx x ny grid.
inline GridMesh make_grid(op2::index_t nx, op2::index_t ny) {
  GridMesh m;
  m.nx = nx;
  m.ny = ny;
  for (op2::index_t y = 0; y <= ny; ++y) {
    for (op2::index_t x = 0; x <= nx; ++x) {
      m.node_coords.push_back(static_cast<double>(x));
      m.node_coords.push_back(static_cast<double>(y));
    }
  }
  for (op2::index_t y = 0; y <= ny; ++y) {
    for (op2::index_t x = 0; x < nx; ++x) {
      m.edge2node.push_back(m.node_id(x, y));
      m.edge2node.push_back(m.node_id(x + 1, y));
    }
  }
  for (op2::index_t y = 0; y < ny; ++y) {
    for (op2::index_t x = 0; x <= nx; ++x) {
      m.edge2node.push_back(m.node_id(x, y));
      m.edge2node.push_back(m.node_id(x, y + 1));
    }
  }
  return m;
}

}  // namespace op2_test
