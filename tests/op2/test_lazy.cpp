// The OP2 lazy chain engine (DESIGN.md §15): queueing and flush points,
// lazy-vs-eager bitwise agreement (fused and unfused), chain statistics,
// and the cancellation/preemption contract — a deadline or preemption
// request takes effect at the next tile boundary, the remainder of the
// schedule is parked resumable, and the next flush completes it exactly
// (never a half-flushed or double-executed chain).
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apl/cancel.hpp"
#include "apl/thread_pool.hpp"
#include "op2/op2.hpp"

namespace {

using apl::exec::Access;

constexpr op2::index_t kNodes = 40;
constexpr op2::index_t kEdges = 39;

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct LazySys {
  op2::Context ctx;
  op2::Set* nodes = nullptr;
  op2::Set* edges = nullptr;
  op2::Map* e2n = nullptr;
  op2::Dat<double>* x = nullptr;
  op2::Dat<double>* y = nullptr;
};

std::unique_ptr<LazySys> build_sys() {
  auto s = std::make_unique<LazySys>();
  s->ctx.set_verify(s->ctx.verify_checks() & ~apl::verify::kAccess);
  s->nodes = &s->ctx.decl_set(kNodes, "nodes");
  s->edges = &s->ctx.decl_set(kEdges, "edges");
  std::vector<op2::index_t> table(2 * kEdges);
  for (op2::index_t e = 0; e < kEdges; ++e) {
    table[2 * e] = e;
    table[2 * e + 1] = e + 1;
  }
  s->e2n = &s->ctx.decl_map(*s->edges, *s->nodes, 2, table, "e2n");
  std::vector<double> xi(kNodes), yi(kEdges, 0.0);
  for (op2::index_t i = 0; i < kNodes; ++i) {
    xi[static_cast<std::size_t>(i)] = 0.5 + 0.01 * static_cast<double>(i);
  }
  s->x = &s->ctx.decl_dat<double>(*s->nodes, 1, xi, "x");
  s->y = &s->ctx.decl_dat<double>(*s->edges, 1, yi, "y");
  return s;
}

/// Enqueues (or eagerly runs) three steps of relax -> gather -> scatter.
/// `tick` (optional) is called from every relax kernel invocation — the
/// hook the preemption test uses to fire mid-chain.
void enqueue_program(LazySys& s, int* counter = nullptr,
                     void (*tick)(int*) = nullptr) {
  for (int step = 0; step < 3; ++step) {
    op2::par_loop(
        s.ctx, "relax", *s.nodes,
        [counter, tick](op2::Acc<double> v) {
          v[0] = 0.5 * v[0] + 0.25;
          if (counter != nullptr) {
            ++*counter;
            if (tick != nullptr) tick(counter);
          }
        },
        op2::arg(*s.x, Access::kRW));
    op2::par_loop(
        s.ctx, "gather", *s.edges,
        [](op2::Acc<double> w, op2::Acc<double> a, op2::Acc<double> b) {
          w[0] = a[0] + b[0];
        },
        op2::arg(*s.y, Access::kWrite),
        op2::arg(*s.x, *s.e2n, 0, Access::kRead),
        op2::arg(*s.x, *s.e2n, 1, Access::kRead));
    op2::par_loop(
        s.ctx, "scatter", *s.edges,
        [](op2::Acc<double> w, op2::Acc<double> a, op2::Acc<double> b) {
          a[0] += 0.125 * w[0];
          b[0] += 0.125 * w[0];
        },
        op2::arg(*s.y, Access::kRead),
        op2::arg(*s.x, *s.e2n, 0, Access::kInc),
        op2::arg(*s.x, *s.e2n, 1, Access::kInc));
  }
}

std::vector<double> state_of(LazySys& s) {
  std::vector<double> out = s.x->to_vector();
  const std::vector<double> ye = s.y->to_vector();
  out.insert(out.end(), ye.begin(), ye.end());
  return out;
}

std::vector<double> eager_reference() {
  auto s = build_sys();
  enqueue_program(*s);
  return state_of(*s);
}

// ---- queueing and flush points ---------------------------------------------

TEST(Op2Lazy, QueuesUntilFlushThenMatchesEager) {
  const std::vector<double> ref = eager_reference();

  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);
  EXPECT_EQ(s->ctx.chain_length(), 9u) << "par_loop executed eagerly";
  s->ctx.flush();
  EXPECT_EQ(s->ctx.chain_length(), 0u);
  EXPECT_TRUE(bitwise_equal(ref, state_of(*s)))
      << "lazy-tiled diverged from eager";
}

TEST(Op2Lazy, UnfusedReplayMatchesEager) {
  const std::vector<double> ref = eager_reference();
  auto s = build_sys();
  s->ctx.set_tiling(false);
  s->ctx.set_lazy(true);
  enqueue_program(*s);
  s->ctx.flush();
  EXPECT_TRUE(bitwise_equal(ref, state_of(*s)));
  EXPECT_GE(s->ctx.chain_stats().verbatim, 1u);
}

TEST(Op2Lazy, RawAccessIsAFlushPoint) {
  const std::vector<double> ref = eager_reference();
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);
  ASSERT_EQ(s->ctx.chain_length(), 9u);
  // No explicit flush: reading the dat must drain the queue first.
  const std::vector<double> got = state_of(*s);
  EXPECT_EQ(s->ctx.chain_length(), 0u);
  EXPECT_TRUE(bitwise_equal(ref, got));
}

TEST(Op2Lazy, ReductionIsAFlushPoint) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);
  ASSERT_EQ(s->ctx.chain_length(), 9u);
  double sum = 0.0;
  op2::par_loop(
      s->ctx, "sum", *s->nodes,
      [](op2::Acc<double> v, op2::Acc<double> g) { g[0] += v[0]; },
      op2::arg(*s->x, Access::kRead),
      op2::arg_gbl(&sum, 1, Access::kInc));
  // The caller reads `sum` right after par_loop returns, so the chain —
  // including the reduction — must already have run.
  EXPECT_EQ(s->ctx.chain_length(), 0u);

  auto ref = build_sys();
  enqueue_program(*ref);
  double ref_sum = 0.0;
  op2::par_loop(
      ref->ctx, "sum", *ref->nodes,
      [](op2::Acc<double> v, op2::Acc<double> g) { g[0] += v[0]; },
      op2::arg(*ref->x, Access::kRead),
      op2::arg_gbl(&ref_sum, 1, Access::kInc));
  EXPECT_EQ(std::memcmp(&sum, &ref_sum, sizeof(double)), 0);
}

TEST(Op2Lazy, ChainStatsAccumulate) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);
  s->ctx.flush();
  const op2::ChainStats& st = s->ctx.chain_stats();
  EXPECT_EQ(st.flushes, 1u);
  EXPECT_EQ(st.loops, 9u);
  EXPECT_EQ(st.max_chain, 9u);
  EXPECT_EQ(st.verbatim, 0u) << "forced tile size should keep fusion";
  EXPECT_GT(st.tiles, 1u);
  EXPECT_GT(st.eager_bytes, 0u);
  // The whole point: cross-loop reuse makes the fused projection smaller.
  EXPECT_LT(st.tiled_bytes, st.eager_bytes);
  EXPECT_GT(st.traffic_saved_fraction(), 0.0);
}

// ---- cancellation / preemption at tile boundaries ---------------------------

TEST(LazyCancel, DeadlineParksChainBeforeAnyTileAndResumeCompletes) {
  const std::vector<double> ref = eager_reference();

  apl::cancel::Token tok;
  apl::cancel::Scope scope(&tok);
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);

  // An already-expired deadline: the first tile boundary fires before any
  // slice runs, so the whole schedule parks untouched.
  tok.cancel(apl::cancel::Reason::kDeadline);
  try {
    s->ctx.flush();
    FAIL() << "flush ignored the cancelled token";
  } catch (const apl::cancel::Cancelled& c) {
    EXPECT_EQ(c.reason(), apl::cancel::Reason::kDeadline);
  }
  EXPECT_TRUE(s->ctx.chain_resumable());
  EXPECT_EQ(s->ctx.chain_length(), 0u) << "queue was not moved into the park";

  // Re-arm and flush: the parked remainder completes exactly.
  tok.reset();
  s->ctx.flush();
  EXPECT_FALSE(s->ctx.chain_resumable());
  EXPECT_TRUE(bitwise_equal(ref, state_of(*s)))
      << "resumed chain diverged from eager";
}

int g_preempt_counter = 0;
apl::cancel::Token* g_preempt_token = nullptr;

TEST(LazyCancel, PreemptTakesEffectAtNextTileBoundaryThenResumes) {
  const std::vector<double> ref = eager_reference();

  apl::cancel::Token tok;
  apl::cancel::Scope scope(&tok);
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);

  // The relax kernel requests preemption mid-chain (after 45 of its 120
  // total invocations, i.e. somewhere inside a middle tile). The current
  // tile must finish — preemption is only observed at tile boundaries —
  // and the remainder parks.
  g_preempt_counter = 0;
  g_preempt_token = &tok;
  enqueue_program(*s, &g_preempt_counter, [](int* c) {
    if (*c == 45) g_preempt_token->request_preempt();
  });
  try {
    s->ctx.flush();
    FAIL() << "flush ignored the preemption request";
  } catch (const apl::cancel::Cancelled& c) {
    EXPECT_EQ(c.reason(), apl::cancel::Reason::kPreempt);
    EXPECT_NE(std::string(c.what()).find("tile boundary"),
              std::string::npos);
  }
  EXPECT_TRUE(s->ctx.chain_resumable());
  const int at_park = g_preempt_counter;
  EXPECT_GE(at_park, 45) << "preempt fired before the trigger";
  EXPECT_LT(at_park, 120) << "chain ran to completion despite preemption";

  // Until the scheduler clears the request, every flush re-parks (the
  // boundary check runs before the first remaining tile).
  EXPECT_THROW(s->ctx.flush(), apl::cancel::Cancelled);
  EXPECT_TRUE(s->ctx.chain_resumable());

  // Re-admission: clear the request and complete. Bitwise agreement with
  // the eager run proves every slice ran exactly once.
  tok.clear_preempt();
  s->ctx.flush();
  EXPECT_FALSE(s->ctx.chain_resumable());
  EXPECT_EQ(g_preempt_counter, 120);
  EXPECT_TRUE(bitwise_equal(ref, state_of(*s)))
      << "preempted+resumed chain diverged from eager";
}

TEST(LazyCancel, RawAccessCompletesParkedRemainder) {
  const std::vector<double> ref = eager_reference();

  apl::cancel::Token tok;
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  {
    apl::cancel::Scope scope(&tok);
    enqueue_program(*s);
    tok.cancel(apl::cancel::Reason::kUser);
    EXPECT_THROW(s->ctx.flush(), apl::cancel::Cancelled);
  }
  ASSERT_TRUE(s->ctx.chain_resumable());
  // Outside the cancel scope, any raw read is an ordinary flush point and
  // must finish the parked remainder before exposing data.
  const std::vector<double> got = state_of(*s);
  EXPECT_FALSE(s->ctx.chain_resumable());
  EXPECT_TRUE(bitwise_equal(ref, got));
}

// ---- threaded color-round execution (DESIGN.md §15) -------------------------

TEST(LazyThreads, TeamRoundsMatchSerialBitwise) {
  const std::vector<double> ref = eager_reference();
  for (std::size_t team : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    apl::ThreadPool pool(team);  // declared first: outlives the context
    auto s = build_sys();
    s->ctx.set_tile_team(&pool);
    s->ctx.set_tile_size(5);
    s->ctx.set_lazy(true);
    enqueue_program(*s);
    s->ctx.flush();
    EXPECT_TRUE(bitwise_equal(ref, state_of(*s)))
        << "team of " << team << " diverged from serial";
    const op2::ChainStats& st = s->ctx.chain_stats();
    EXPECT_EQ(st.verbatim, 0u) << "chain fell back to verbatim replay";
    EXPECT_GT(st.rounds, 0u) << "fused chain did not go through rounds";
    EXPECT_LE(st.rounds, st.tiles) << "more rounds than tiles";
  }
}

TEST(LazyThreads, RoundsCountedOnlyOnTeamPath) {
  auto s = build_sys();
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);
  s->ctx.flush();
  EXPECT_GT(s->ctx.chain_stats().tiles, 0u);
  EXPECT_EQ(s->ctx.chain_stats().rounds, 0u)
      << "serial tile walk should not report color rounds";
}

TEST(LazyThreads, ProfileAndTrafficMatchSerialExactly) {
  // Accounting contract: per-loop calls, traffic-class bytes and element
  // counts are credited once per loop at chain completion, on the
  // submitting thread — so a team-executed flush must report *exactly*
  // the serial totals, however the tiles were distributed.
  auto serial = build_sys();
  serial->ctx.set_tile_size(5);
  serial->ctx.set_lazy(true);
  enqueue_program(*serial);
  serial->ctx.flush();

  apl::ThreadPool pool(4);
  auto teamed = build_sys();
  teamed->ctx.set_tile_team(&pool);
  teamed->ctx.set_tile_size(5);
  teamed->ctx.set_lazy(true);
  enqueue_program(*teamed);
  teamed->ctx.flush();

  const auto& sp = serial->ctx.profile().all();
  const auto& tp = teamed->ctx.profile().all();
  ASSERT_EQ(sp.size(), tp.size());
  for (const auto& [name, sstats] : sp) {
    ASSERT_TRUE(tp.contains(name)) << name;
    const apl::LoopStats& tstats = tp.at(name);
    EXPECT_EQ(sstats.calls, tstats.calls) << name;
    EXPECT_EQ(sstats.elements, tstats.elements) << name;
    EXPECT_EQ(sstats.bytes_direct, tstats.bytes_direct) << name;
    EXPECT_EQ(sstats.bytes_gather, tstats.bytes_gather) << name;
    EXPECT_EQ(sstats.bytes_scatter, tstats.bytes_scatter) << name;
  }
  EXPECT_EQ(serial->ctx.chain_stats().eager_bytes,
            teamed->ctx.chain_stats().eager_bytes);
  EXPECT_EQ(serial->ctx.chain_stats().tiled_bytes,
            teamed->ctx.chain_stats().tiled_bytes);
}

TEST(LazyThreads, CancelParksAtRoundBoundaryAndResumeCompletes) {
  const std::vector<double> ref = eager_reference();

  apl::cancel::Token tok;
  apl::cancel::Scope scope(&tok);
  apl::ThreadPool pool(2);
  auto s = build_sys();
  s->ctx.set_tile_team(&pool);
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);

  // Already-expired deadline: the round-boundary check on the submitting
  // thread fires before any round starts, parking the whole schedule.
  tok.cancel(apl::cancel::Reason::kDeadline);
  EXPECT_THROW(s->ctx.flush(), apl::cancel::Cancelled);
  ASSERT_TRUE(s->ctx.chain_resumable());

  tok.reset();
  s->ctx.flush();
  EXPECT_FALSE(s->ctx.chain_resumable());
  EXPECT_TRUE(bitwise_equal(ref, state_of(*s)))
      << "round-wise resumed chain diverged from eager";
}

std::atomic<int>* g_round_ticks = nullptr;
apl::cancel::Token* g_round_preempt_token = nullptr;

TEST(LazyThreads, WorkerPreemptParksMidChainAtRoundBoundaryThenResumes) {
  const std::vector<double> ref = eager_reference();

  apl::cancel::Token tok;
  apl::cancel::Scope scope(&tok);
  apl::ThreadPool pool(2);
  auto s = build_sys();
  s->ctx.set_tile_team(&pool);
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);

  // Same program as enqueue_program, but the relax kernel ticks an atomic
  // (it may run on any team member — scope propagation is what lets it
  // see the token at all) and requests preemption mid-chain. The running
  // round finishes; the remainder parks at the *round* boundary.
  std::atomic<int> ticks{0};
  g_round_ticks = &ticks;
  g_round_preempt_token = &tok;
  for (int step = 0; step < 3; ++step) {
    op2::par_loop(
        s->ctx, "relax", *s->nodes,
        [](op2::Acc<double> v) {
          v[0] = 0.5 * v[0] + 0.25;
          if (g_round_ticks->fetch_add(1) + 1 == 45) {
            g_round_preempt_token->request_preempt();
          }
        },
        op2::arg(*s->x, Access::kRW));
    op2::par_loop(
        s->ctx, "gather", *s->edges,
        [](op2::Acc<double> w, op2::Acc<double> a, op2::Acc<double> b) {
          w[0] = a[0] + b[0];
        },
        op2::arg(*s->y, Access::kWrite),
        op2::arg(*s->x, *s->e2n, 0, Access::kRead),
        op2::arg(*s->x, *s->e2n, 1, Access::kRead));
    op2::par_loop(
        s->ctx, "scatter", *s->edges,
        [](op2::Acc<double> w, op2::Acc<double> a, op2::Acc<double> b) {
          a[0] += 0.125 * w[0];
          b[0] += 0.125 * w[0];
        },
        op2::arg(*s->y, Access::kRead),
        op2::arg(*s->x, *s->e2n, 0, Access::kInc),
        op2::arg(*s->x, *s->e2n, 1, Access::kInc));
  }
  try {
    s->ctx.flush();
    FAIL() << "flush ignored the preemption request";
  } catch (const apl::cancel::Cancelled& c) {
    EXPECT_EQ(c.reason(), apl::cancel::Reason::kPreempt);
    EXPECT_NE(std::string(c.what()).find("round boundary"),
              std::string::npos)
        << c.what();
  }
  ASSERT_TRUE(s->ctx.chain_resumable());
  const int at_park = ticks.load();
  EXPECT_GE(at_park, 45) << "preempt fired before the trigger";
  EXPECT_LT(at_park, 120) << "chain ran to completion despite preemption";

  tok.clear_preempt();
  s->ctx.flush();
  EXPECT_FALSE(s->ctx.chain_resumable());
  EXPECT_EQ(ticks.load(), 120);
  EXPECT_TRUE(bitwise_equal(ref, state_of(*s)))
      << "preempted+resumed round execution diverged from eager";
}

TEST(LazyThreads, ThreadsBackendUsesRoundsWithoutExplicitTeam) {
  // backend kThreads alone enables the team path (the process pool).
  const std::vector<double> ref = eager_reference();
  auto s = build_sys();
  s->ctx.set_backend(apl::exec::Backend::kThreads);
  ASSERT_TRUE(s->ctx.tile_team_enabled());
  s->ctx.set_tile_size(5);
  s->ctx.set_lazy(true);
  enqueue_program(*s);
  s->ctx.flush();
  EXPECT_GT(s->ctx.chain_stats().rounds, 0u);
  EXPECT_TRUE(bitwise_equal(ref, state_of(*s)));
}

}  // namespace
