// Cross-backend equivalence: every backend is "generated code" for the same
// abstract loop, so all must agree with the sequential reference — exactly
// (for order-independent kernels) or to floating-point-reordering tolerance
// (for indirect increments, whose commit order differs by design).
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "op2/op2.hpp"
#include "apl/testkit/fixtures.hpp"

namespace {

using apl::exec::Access;
using apl::exec::Backend;
using op2::index_t;

constexpr Backend kAllBackends[] = {Backend::kSeq, Backend::kSimd,
                                    Backend::kThreads, Backend::kCudaSim};

struct Harness {
  explicit Harness(index_t nx = 6, index_t ny = 5)
      : mesh(apl::testkit::make_grid(nx, ny)) {
    edges = &ctx.decl_set(mesh.num_edges(), "edges");
    nodes = &ctx.decl_set(mesh.num_nodes(), "nodes");
    e2n = &ctx.decl_map(*edges, *nodes, 2, mesh.edge2node, "e2n");
    x = &ctx.decl_dat<double>(*nodes, 2, mesh.node_coords, "x");
    std::vector<double> qi(mesh.num_nodes());
    for (index_t i = 0; i < mesh.num_nodes(); ++i) {
      qi[i] = 1.0 + i % 7;  // exactly representable, order-independent sums
    }
    q = &ctx.decl_dat<double>(*nodes, 1, qi, "q");
    res = &ctx.decl_dat<double>(*nodes, 1, std::span<const double>{}, "res");
    ctx.set_block_size(16);  // force multiple blocks and colors
  }
  apl::testkit::GridMesh mesh;
  op2::Context ctx;
  op2::Set* edges;
  op2::Set* nodes;
  op2::Map* e2n;
  op2::Dat<double>* x;
  op2::Dat<double>* q;
  op2::Dat<double>* res;
};

class BackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(BackendTest, DirectLoopWritesEveryElement) {
  Harness h;
  h.ctx.set_backend(GetParam());
  op2::par_loop(h.ctx, "scale", *h.nodes,
                [](op2::Acc<double> q, op2::Acc<double> r) { r[0] = 2 * q[0]; },
                op2::arg(*h.q, Access::kRead),
                op2::arg(*h.res, Access::kWrite));
  const auto qv = h.q->to_vector();
  const auto rv = h.res->to_vector();
  for (index_t i = 0; i < h.nodes->size(); ++i) {
    EXPECT_EQ(rv[i], 2 * qv[i]) << i;
  }
}

TEST_P(BackendTest, DirectMultiComponent) {
  Harness h;
  h.ctx.set_backend(GetParam());
  // Swap the two coordinate components in place (RW access).
  op2::par_loop(h.ctx, "swap", *h.nodes,
                [](op2::Acc<double> x) { std::swap(x[0], x[1]); },
                op2::arg(*h.x, Access::kRW));
  const auto xv = h.x->to_vector();
  for (index_t i = 0; i < h.nodes->size(); ++i) {
    EXPECT_EQ(xv[2 * i], h.mesh.node_coords[2 * i + 1]);
    EXPECT_EQ(xv[2 * i + 1], h.mesh.node_coords[2 * i]);
  }
}

TEST_P(BackendTest, IndirectReadGather) {
  Harness h;
  h.ctx.set_backend(GetParam());
  op2::Dat<double>& elen =
      h.ctx.decl_dat<double>(*h.edges, 1, std::span<const double>{}, "elen");
  op2::par_loop(
      h.ctx, "edge_len", *h.edges,
      [](op2::Acc<double> a, op2::Acc<double> b, op2::Acc<double> len) {
        len[0] = std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]);
      },
      op2::arg(*h.x, *h.e2n, 0, Access::kRead),
      op2::arg(*h.x, *h.e2n, 1, Access::kRead),
      op2::arg(elen, Access::kWrite));
  // Every grid edge has unit length.
  for (double v : elen.to_vector()) EXPECT_EQ(v, 1.0);
}

TEST_P(BackendTest, IndirectIncrementMatchesDegree) {
  Harness h;
  h.ctx.set_backend(GetParam());
  // Each edge adds 1 to both endpoints: res becomes the node degree.
  op2::par_loop(h.ctx, "degree", *h.edges,
                [](op2::Acc<double> a, op2::Acc<double> b) {
                  a[0] += 1.0;
                  b[0] += 1.0;
                },
                op2::arg(*h.res, *h.e2n, 0, Access::kInc),
                op2::arg(*h.res, *h.e2n, 1, Access::kInc));
  const auto rv = h.res->to_vector();
  // Interior nodes have degree 4, corners 2, other boundary nodes 3.
  EXPECT_EQ(rv[h.mesh.node_id(0, 0)], 2.0);
  EXPECT_EQ(rv[h.mesh.node_id(1, 0)], 3.0);
  EXPECT_EQ(rv[h.mesh.node_id(1, 1)], 4.0);
  const double total = std::accumulate(rv.begin(), rv.end(), 0.0);
  EXPECT_EQ(total, 2.0 * h.edges->size());
}

TEST_P(BackendTest, GlobalSumReduction) {
  Harness h;
  h.ctx.set_backend(GetParam());
  double sum = 0.0;
  op2::par_loop(h.ctx, "sum_q", *h.nodes,
                [](op2::Acc<double> q, op2::Acc<double> s) { s[0] += q[0]; },
                op2::arg(*h.q, Access::kRead),
                op2::arg_gbl(&sum, 1, Access::kInc));
  const auto qv = h.q->to_vector();
  EXPECT_EQ(sum, std::accumulate(qv.begin(), qv.end(), 0.0));
}

TEST_P(BackendTest, GlobalMinMaxReduction) {
  Harness h;
  h.ctx.set_backend(GetParam());
  double mn = 1e300, mx = -1e300;
  op2::par_loop(h.ctx, "minmax", *h.nodes,
                [](op2::Acc<double> q, op2::Acc<double> lo,
                   op2::Acc<double> hi) {
                  lo[0] = std::min(lo[0], q[0]);
                  hi[0] = std::max(hi[0], q[0]);
                },
                op2::arg(*h.q, Access::kRead),
                op2::arg_gbl(&mn, 1, Access::kMin),
                op2::arg_gbl(&mx, 1, Access::kMax));
  EXPECT_EQ(mn, 1.0);
  EXPECT_EQ(mx, 7.0);
}

TEST_P(BackendTest, GlobalReadBroadcast) {
  Harness h;
  h.ctx.set_backend(GetParam());
  const double factor[2] = {3.0, 4.0};
  op2::par_loop(h.ctx, "axpy", *h.nodes,
                [](op2::Acc<const double> f, op2::Acc<double> q,
                   op2::Acc<double> r) { r[0] = f[0] * q[0] + f[1]; },
                op2::arg_gbl(const_cast<double*>(factor), 2, Access::kRead),
                op2::arg(*h.q, Access::kRead),
                op2::arg(*h.res, Access::kWrite));
  const auto qv = h.q->to_vector();
  const auto rv = h.res->to_vector();
  for (index_t i = 0; i < h.nodes->size(); ++i) {
    EXPECT_EQ(rv[i], 3.0 * qv[i] + 4.0);
  }
}

TEST_P(BackendTest, SoALayoutGivesSameResults) {
  Harness h;
  h.ctx.set_backend(GetParam());
  h.ctx.convert_layout(op2::Layout::kSoA);
  op2::par_loop(h.ctx, "degree", *h.edges,
                [](op2::Acc<double> a, op2::Acc<double> b) {
                  a[0] += 1.0;
                  b[0] += 1.0;
                },
                op2::arg(*h.res, *h.e2n, 0, Access::kInc),
                op2::arg(*h.res, *h.e2n, 1, Access::kInc));
  EXPECT_EQ(h.res->to_vector()[h.mesh.node_id(1, 1)], 4.0);
}

TEST_P(BackendTest, EmptySetLoopIsNoop) {
  Harness h;
  h.ctx.set_backend(GetParam());
  op2::Set& empty = h.ctx.decl_set(0, "empty");
  op2::Dat<double>& d =
      h.ctx.decl_dat<double>(empty, 1, std::span<const double>{}, "d");
  double sum = 0;
  EXPECT_NO_THROW(op2::par_loop(
      h.ctx, "noop", empty,
      [](op2::Acc<double>, op2::Acc<double> s) { s[0] += 1; },
      op2::arg(d, Access::kRW), op2::arg_gbl(&sum, 1, Access::kInc)));
  EXPECT_EQ(sum, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           return op2::to_string(info.param);
                         });

// ---- Numeric equivalence against seq on a non-trivial kernel ------------

class BackendEquivalence : public ::testing::TestWithParam<Backend> {};

std::vector<double> run_pseudo_laplace(Backend backend, bool soa,
                                       index_t block_size) {
  Harness h(9, 7);
  h.ctx.set_backend(backend);
  h.ctx.set_block_size(block_size);
  if (soa) h.ctx.convert_layout(op2::Layout::kSoA);
  // Three sweeps of an edge-based pseudo-Laplacian with a global residual.
  double rms = 0;
  for (int sweep = 0; sweep < 3; ++sweep) {
    op2::par_loop(h.ctx, "zero", *h.nodes,
                  [](op2::Acc<double> r) { r[0] = 0.0; },
                  op2::arg(*h.res, Access::kWrite));
    op2::par_loop(
        h.ctx, "flux", *h.edges,
        [](op2::Acc<double> qa, op2::Acc<double> qb, op2::Acc<double> ra,
           op2::Acc<double> rb) {
          const double f = 0.25 * (qa[0] - qb[0]);
          ra[0] -= f;
          rb[0] += f;
        },
        op2::arg(*h.q, *h.e2n, 0, Access::kRead),
        op2::arg(*h.q, *h.e2n, 1, Access::kRead),
        op2::arg(*h.res, *h.e2n, 0, Access::kInc),
        op2::arg(*h.res, *h.e2n, 1, Access::kInc));
    op2::par_loop(h.ctx, "apply", *h.nodes,
                  [](op2::Acc<double> q, op2::Acc<double> r,
                     op2::Acc<double> s) {
                    q[0] += r[0];
                    s[0] += r[0] * r[0];
                  },
                  op2::arg(*h.q, Access::kRW),
                  op2::arg(*h.res, Access::kRead),
                  op2::arg_gbl(&rms, 1, Access::kInc));
  }
  auto out = h.q->to_vector();
  out.push_back(rms);
  return out;
}

TEST_P(BackendEquivalence, PseudoLaplaceMatchesSeq) {
  const auto ref = run_pseudo_laplace(Backend::kSeq, false, 256);
  const auto got = run_pseudo_laplace(GetParam(), false, 16);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-12 * (1.0 + std::abs(ref[i]))) << i;
  }
}

TEST_P(BackendEquivalence, PseudoLaplaceMatchesSeqSoA) {
  const auto ref = run_pseudo_laplace(Backend::kSeq, false, 256);
  const auto got = run_pseudo_laplace(GetParam(), true, 24);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-12 * (1.0 + std::abs(ref[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendEquivalence,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           return op2::to_string(info.param);
                         });

// ---- cudasim staging variants --------------------------------------------

TEST(CudaSim, StagingOnOffSameResults) {
  for (const bool staging : {true, false}) {
    Harness h;
    h.ctx.set_backend(Backend::kCudaSim);
    h.ctx.set_staging(staging);
    op2::par_loop(h.ctx, "degree", *h.edges,
                  [](op2::Acc<double> a, op2::Acc<double> b) {
                    a[0] += 1.0;
                    b[0] += 1.0;
                  },
                  op2::arg(*h.res, *h.e2n, 0, Access::kInc),
                  op2::arg(*h.res, *h.e2n, 1, Access::kInc));
    EXPECT_EQ(h.res->to_vector()[h.mesh.node_id(1, 1)], 4.0)
        << "staging=" << staging;
  }
}

// ---- debug consistency checks ---------------------------------------------

TEST(DebugChecks, CatchesKernelWritingReadOnlyArg) {
  Harness h;
  h.ctx.set_debug_checks(true);
  EXPECT_THROW(
      op2::par_loop(h.ctx, "evil", *h.nodes,
                    [](op2::Acc<double> q) { q[0] = -1.0; },
                    op2::arg(*h.q, Access::kRead)),
      apl::Error);
}

TEST(DebugChecks, PassesWellBehavedKernel) {
  Harness h;
  h.ctx.set_debug_checks(true);
  EXPECT_NO_THROW(op2::par_loop(
      h.ctx, "good", *h.nodes,
      [](op2::Acc<double> q, op2::Acc<double> r) { r[0] = q[0]; },
      op2::arg(*h.q, Access::kRead), op2::arg(*h.res, Access::kWrite)));
}

// ---- profiling side effects -------------------------------------------------

TEST(Profiling, LoopStatsAccumulate) {
  Harness h;
  op2::par_loop(h.ctx, "scale", *h.nodes,
                [](op2::Acc<double> q, op2::Acc<double> r) { r[0] = q[0]; },
                op2::arg(*h.q, Access::kRead),
                op2::arg(*h.res, Access::kWrite));
  const auto& s = h.ctx.profile().all().at("scale");
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.elements, static_cast<std::uint64_t>(h.nodes->size()));
  // q read + res written, both direct doubles.
  EXPECT_EQ(s.bytes_direct,
            2 * sizeof(double) * static_cast<std::uint64_t>(h.nodes->size()));
  EXPECT_EQ(s.bytes_gather, 0u);
}

TEST(Profiling, IndirectBytesCountUniqueTargets) {
  Harness h;
  op2::par_loop(h.ctx, "degree", *h.edges,
                [](op2::Acc<double> a, op2::Acc<double> b) {
                  a[0] += 1.0;
                  b[0] += 1.0;
                },
                op2::arg(*h.res, *h.e2n, 0, Access::kInc),
                op2::arg(*h.res, *h.e2n, 1, Access::kInc));
  const auto& s = h.ctx.profile().all().at("degree");
  // The two Inc args reach the same dat through the same map: the unique
  // data is counted once, with read+write passes (2x).
  EXPECT_EQ(s.bytes_scatter, 2ull * sizeof(double) *
                                 static_cast<std::uint64_t>(h.nodes->size()));
  EXPECT_EQ(s.bytes_direct, 0u);
}

TEST(Profiling, FlopHintsFeedStats) {
  Harness h;
  h.ctx.hint_flops("scale", 3.0);
  op2::par_loop(h.ctx, "scale", *h.nodes,
                [](op2::Acc<double> q, op2::Acc<double> r) { r[0] = q[0]; },
                op2::arg(*h.q, Access::kRead),
                op2::arg(*h.res, Access::kWrite));
  EXPECT_DOUBLE_EQ(h.ctx.profile().all().at("scale").flops,
                   3.0 * h.nodes->size());
}

}  // namespace
