#include "op2/plan.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "op2/op2.hpp"
#include "apl/testkit/fixtures.hpp"

namespace {

using op2::index_t;

struct PlanFixture : ::testing::Test {
  void SetUp() override {
    mesh = apl::testkit::make_grid(8, 8);
    edges = &ctx.decl_set(mesh.num_edges(), "edges");
    nodes = &ctx.decl_set(mesh.num_nodes(), "nodes");
    e2n = &ctx.decl_map(*edges, *nodes, 2, mesh.edge2node, "e2n");
    q = &ctx.decl_dat<double>(*nodes, 1, std::span<const double>{}, "q");
  }
  apl::testkit::GridMesh mesh;
  op2::Context ctx;
  op2::Set* edges = nullptr;
  op2::Set* nodes = nullptr;
  op2::Map* e2n = nullptr;
  op2::Dat<double>* q = nullptr;
};

std::vector<op2::ArgInfo> inc_args(op2::Dat<double>& d, const op2::Map& m) {
  return {op2::arg(d, m, 0, apl::exec::Access::kInc).info(),
          op2::arg(d, m, 1, apl::exec::Access::kInc).info()};
}

TEST_F(PlanFixture, DirectLoopHasSingleColor) {
  const std::vector<op2::ArgInfo> args = {
      op2::arg(*q, apl::exec::Access::kWrite).info()};
  // Direct loop over nodes: no conflicts, everything one color.
  const op2::Plan p = op2::detail::build_plan(ctx, *nodes, args, 16);
  EXPECT_FALSE(p.has_conflicts);
  EXPECT_EQ(p.num_block_colors, 1);
  EXPECT_EQ(p.max_elem_colors, 1);
}

TEST_F(PlanFixture, IndirectReadHasNoConflicts) {
  const std::vector<op2::ArgInfo> args = {
      op2::arg(*q, *e2n, 0, apl::exec::Access::kRead).info()};
  const op2::Plan p = op2::detail::build_plan(ctx, *edges, args, 16);
  EXPECT_FALSE(p.has_conflicts);
}

TEST_F(PlanFixture, IndirectIncrementColorsBlocks) {
  const op2::Plan p = op2::detail::build_plan(ctx, *edges, inc_args(*q, *e2n), 16);
  EXPECT_TRUE(p.has_conflicts);
  EXPECT_GT(p.num_block_colors, 1);
  // Property: no two blocks of equal color touch a common node.
  std::vector<std::set<index_t>> block_nodes(p.num_blocks);
  for (index_t b = 0; b < p.num_blocks; ++b) {
    for (index_t e = p.block_offset[b]; e < p.block_offset[b + 1]; ++e) {
      block_nodes[b].insert(e2n->at(e, 0));
      block_nodes[b].insert(e2n->at(e, 1));
    }
  }
  for (index_t b1 = 0; b1 < p.num_blocks; ++b1) {
    for (index_t b2 = b1 + 1; b2 < p.num_blocks; ++b2) {
      if (p.block_color[b1] != p.block_color[b2]) continue;
      for (index_t n : block_nodes[b1]) {
        EXPECT_EQ(block_nodes[b2].count(n), 0u)
            << "blocks " << b1 << "," << b2 << " share node " << n;
      }
    }
  }
}

TEST_F(PlanFixture, ElementColoringValidWithinBlocks) {
  const op2::Plan p = op2::detail::build_plan(ctx, *edges, inc_args(*q, *e2n), 32);
  for (index_t b = 0; b < p.num_blocks; ++b) {
    // No two same-colored edges within a block share a node.
    for (index_t e1 = p.block_offset[b]; e1 < p.block_offset[b + 1]; ++e1) {
      for (index_t e2 = e1 + 1; e2 < p.block_offset[b + 1]; ++e2) {
        if (p.elem_color[e1] != p.elem_color[e2]) continue;
        for (index_t k1 = 0; k1 < 2; ++k1) {
          for (index_t k2 = 0; k2 < 2; ++k2) {
            EXPECT_NE(e2n->at(e1, k1), e2n->at(e2, k2))
                << "same-color edges " << e1 << "," << e2 << " share a node";
          }
        }
      }
    }
  }
}

TEST_F(PlanFixture, BlocksCoverSetExactly) {
  const op2::Plan p = op2::detail::build_plan(ctx, *edges, inc_args(*q, *e2n), 48);
  EXPECT_EQ(p.block_offset.front(), 0);
  EXPECT_EQ(p.block_offset.back(), edges->size());
  index_t blocks_in_colors = 0;
  for (const auto& c : p.blocks_by_color) {
    blocks_in_colors += static_cast<index_t>(c.size());
  }
  EXPECT_EQ(blocks_in_colors, p.num_blocks);
}

TEST_F(PlanFixture, IncrementsToDifferentDatsDoNotConflict) {
  op2::Dat<double>& r =
      ctx.decl_dat<double>(*nodes, 1, std::span<const double>{}, "r");
  // Each edge increments q through endpoint 0 and r through endpoint 1:
  // never the same array element, so the resources are disjoint and only
  // same-dat sharing forces colors.
  const std::vector<op2::ArgInfo> args = {
      op2::arg(*q, *e2n, 0, apl::exec::Access::kInc).info(),
      op2::arg(r, *e2n, 1, apl::exec::Access::kInc).info()};
  const op2::Plan p = op2::detail::build_plan(ctx, *edges, args, 16);
  EXPECT_TRUE(p.has_conflicts);
  // With only single-endpoint increments per dat, fewer colors are needed
  // than when both endpoints of both dats conflict.
  const op2::Plan worst = op2::detail::build_plan(ctx, *edges, inc_args(*q, *e2n), 16);
  EXPECT_LE(p.num_block_colors, worst.num_block_colors);
}

TEST_F(PlanFixture, PlansAreCachedBySignature) {
  const auto args = inc_args(*q, *e2n);
  const op2::Plan& p1 = ctx.plan_for({"loop", edges, args});
  const op2::Plan& p2 = ctx.plan_for({"loop", edges, args});
  EXPECT_EQ(&p1, &p2);
  // A different argument signature must get its own plan.
  const std::vector<op2::ArgInfo> read_args = {
      op2::arg(*q, *e2n, 0, apl::exec::Access::kRead).info()};
  const op2::Plan& p3 = ctx.plan_for({"loop", edges, read_args});
  EXPECT_NE(&p3, &p1);
  EXPECT_FALSE(p3.has_conflicts);
  EXPECT_TRUE(p1.has_conflicts);
}

TEST_F(PlanFixture, BlockSizeChangeInvalidatesCache) {
  const auto args = inc_args(*q, *e2n);
  const op2::Plan& p1 = ctx.plan_for({"loop", edges, args});
  EXPECT_EQ(p1.block_size, 256);
  ctx.set_block_size(32);
  const op2::Plan& p2 = ctx.plan_for({"loop", edges, args});
  EXPECT_EQ(p2.block_size, 32);
}

TEST_F(PlanFixture, EmptySetPlan) {
  op2::Set& empty = ctx.decl_set(0, "empty");
  const std::vector<op2::ArgInfo> args;
  const op2::Plan p = op2::detail::build_plan(ctx, empty, args, 16);
  EXPECT_EQ(p.num_blocks, 0);
}

TEST_F(PlanFixture, EmptySetIndirectPlanAuditsClean) {
  op2::Set& empty = ctx.decl_set(0, "none");
  op2::Map& none2n =
      ctx.decl_map(empty, *nodes, 2, std::vector<index_t>{}, "none2n");
  const auto args = inc_args(*q, none2n);
  const op2::Plan p = op2::detail::build_plan(ctx, empty, args, 16);
  EXPECT_EQ(p.num_blocks, 0);
  EXPECT_TRUE(op2::audit_plan(ctx, empty, args, p).empty());
}

TEST_F(PlanFixture, SingleElementSetPlanIsValid) {
  op2::Set& one = ctx.decl_set(1, "one");
  op2::Map& o2n =
      ctx.decl_map(one, *nodes, 2, std::vector<index_t>{0, 1}, "o2n");
  const auto args = inc_args(*q, o2n);
  const op2::Plan p = op2::detail::build_plan(ctx, one, args, 16);
  EXPECT_EQ(p.num_blocks, 1);
  EXPECT_EQ(p.block_offset.back(), 1);
  EXPECT_TRUE(op2::audit_plan(ctx, one, args, p).empty());
}

TEST_F(PlanFixture, SelfReferencingMapPlanIsRaceFree) {
  // cells -> cells map (each cell increments itself and its successor):
  // the from- and to-set coincide, and one row even references the element
  // itself. The colored plan must still prove race-free under the audit.
  op2::Set& cells = ctx.decl_set(6, "cells");
  std::vector<index_t> tbl;
  for (index_t c = 0; c < 6; ++c) {
    tbl.push_back(c);
    tbl.push_back((c + 1) % 6);
  }
  op2::Map& c2c = ctx.decl_map(cells, cells, 2, tbl, "c2c");
  op2::Dat<double>& acc = ctx.decl_dat<double>(
      cells, 1, std::vector<double>(6, 0.0), "acc");
  const auto args = inc_args(acc, c2c);
  const op2::Plan p = op2::detail::build_plan(ctx, cells, args, 2);
  EXPECT_TRUE(p.has_conflicts);
  EXPECT_TRUE(op2::audit_plan(ctx, cells, args, p).empty());
}

}  // namespace
