// Guarded execution mode (apl::verify): every check catches its
// deliberately wrong program with a diagnostic naming the loop and the
// offending argument, records the violation in the context's Report, and
// guarded runs of *correct* code stay bit-identical to unguarded ones.
//
// One test per failure mode:
//   kAccess  — write through kRead, read-before-write kWrite, partial
//              kWrite, non-additive kInc (OP2 canary probes); write through
//              kRead and through a kRead global (OPS snapshot diff).
//   kBounds  — out-of-range map at declaration, and per-loop revalidation
//              catching a fault-injected corruption (corrupt_map=name@I).
//   kPlan    — audit flags a tampered coloring; a real plan audits clean.
//   kHalo    — owner values changed behind the dirty-bit tracking are
//              reported as stale ghost copies (OP2 and OPS).
//   kStencil — an access outside the declared stencil names dat + stencil.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apl/fault.hpp"
#include "apl/verify.hpp"
#include "op2/dist.hpp"
#include "op2/op2.hpp"
#include "op2/plan.hpp"
#include "ops/dist.hpp"
#include "ops/ops.hpp"

#include "../support/expect_error.hpp"

namespace {

using apl::exec::Access;
using op2::index_t;
namespace verify = apl::verify;

// ---- spec parsing -----------------------------------------------------------

TEST(VerifySpec, ParsesCheckLists) {
  EXPECT_EQ(verify::checks_from_string("access"), verify::kAccess);
  EXPECT_EQ(verify::checks_from_string("access,bounds"),
            verify::kAccess | verify::kBounds);
  EXPECT_EQ(verify::checks_from_string(" plan , halo "),
            verify::kPlan | verify::kHalo);
  EXPECT_EQ(verify::checks_from_string("all"), unsigned{verify::kAll});
  EXPECT_EQ(verify::checks_from_string("off"), unsigned{verify::kNone});
  // "off" resets whatever was accumulated before it.
  EXPECT_EQ(verify::checks_from_string("bounds,off"), unsigned{verify::kNone});
  EXPECT_APL_ERROR("unknown OPAL_VERIFY check 'acess'",
                   verify::checks_from_string("acess"));
}

// ---- OP2 fixtures -----------------------------------------------------------

/// A 1D line mesh: n nodes, n-1 edges connecting neighbours. Verification
/// is explicitly off after construction; each test opts into its check so
/// results do not depend on the OPAL_VERIFY environment the suite runs in.
struct LineMesh {
  explicit LineMesh(index_t n = 12) : n(n) {
    ctx.set_verify(verify::kNone);
    nodes = &ctx.decl_set(n, "nodes");
    edges = &ctx.decl_set(n - 1, "edges");
    std::vector<index_t> tbl;
    for (index_t e = 0; e < n - 1; ++e) {
      tbl.push_back(e);
      tbl.push_back(e + 1);
    }
    e2n = &ctx.decl_map(*edges, *nodes, 2, tbl, "e2n");
    std::vector<double> qi(n);
    for (index_t i = 0; i < n; ++i) qi[i] = 1.0 + i % 5;
    q = &ctx.decl_dat<double>(*nodes, 1, qi, "q");
    res = &ctx.decl_dat<double>(*nodes, 1, std::vector<double>(n, 0.0),
                                "res");
  }

  /// One correct flux + apply sweep (pure reads, pure increments).
  void sweep() {
    op2::par_loop(ctx, "flux", *edges,
                  [](op2::Acc<double> qa, op2::Acc<double> qb,
                     op2::Acc<double> ra, op2::Acc<double> rb) {
                    const double f = 0.5 * (qa[0] - qb[0]);
                    ra[0] += f;
                    rb[0] -= f;
                  },
                  op2::arg(*q, *e2n, 0, Access::kRead),
                  op2::arg(*q, *e2n, 1, Access::kRead),
                  op2::arg(*res, *e2n, 0, Access::kInc),
                  op2::arg(*res, *e2n, 1, Access::kInc));
    op2::par_loop(ctx, "apply", *nodes,
                  [](op2::Acc<double> q, op2::Acc<double> r) {
                    q[0] += 0.1 * r[0];
                  },
                  op2::arg(*q, Access::kRW), op2::arg(*res, Access::kRead));
  }

  index_t n;
  op2::Context ctx;
  op2::Set* nodes;
  op2::Set* edges;
  op2::Map* e2n;
  op2::Dat<double>* q;
  op2::Dat<double>* res;
};

// ---- OP2 access enforcement -------------------------------------------------

TEST(VerifyOp2Access, WriteThroughReadOnlyArgIsCaught) {
  LineMesh m;
  m.ctx.set_verify(verify::kAccess);
  EXPECT_APL_ERROR("declared kRead, observed write",
                   op2::par_loop(m.ctx, "bad_write", *m.nodes,
                                 [](op2::Acc<double> q) { q[0] = 7.0; },
                                 op2::arg(*m.q, Access::kRead)));
  const verify::Entry* e =
      m.ctx.verify_report().find("bad_write", verify::kAccess);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'q'"), std::string::npos);
  EXPECT_NE(e->detail.find("arg 0"), std::string::npos);
  EXPECT_EQ(e->count, 1u);
}

TEST(VerifyOp2Access, ReadBeforeWriteIsCaught) {
  LineMesh m;
  m.ctx.set_verify(verify::kAccess);
  // res is declared kWrite but the update depends on its previous value.
  EXPECT_APL_ERROR("observed read before write",
                   op2::par_loop(m.ctx, "decay", *m.nodes,
                                 [](op2::Acc<double> r) { r[0] = 0.5 * r[0]; },
                                 op2::arg(*m.res, Access::kWrite)));
  const verify::Entry* e = m.ctx.verify_report().find("decay", verify::kAccess);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'res'"), std::string::npos);
}

TEST(VerifyOp2Access, PartialWriteIsCaught) {
  LineMesh m;
  m.ctx.set_verify(verify::kAccess);
  op2::Dat<double>& v2 =
      m.ctx.decl_dat<double>(*m.nodes, 2, std::span<const double>{}, "v2");
  // Only component 0 of the 2-component kWrite argument is written.
  EXPECT_APL_ERROR("was never written",
                   op2::par_loop(m.ctx, "half", *m.nodes,
                                 [](op2::Acc<double> v) { v[0] = 1.0; },
                                 op2::arg(v2, Access::kWrite)));
  const verify::Entry* e = m.ctx.verify_report().find("half", verify::kAccess);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'v2'"), std::string::npos);
  EXPECT_NE(e->detail.find("component 1"), std::string::npos);
}

TEST(VerifyOp2Access, NonAdditiveIncrementIsCaught) {
  LineMesh m;
  m.ctx.set_verify(verify::kAccess);
  EXPECT_APL_ERROR("not a pure accumulation",
                   op2::par_loop(m.ctx, "clobber", *m.nodes,
                                 [](op2::Acc<double> r) { r[0] = 3.0; },
                                 op2::arg(*m.res, Access::kInc)));
  const verify::Entry* e =
      m.ctx.verify_report().find("clobber", verify::kAccess);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'res'"), std::string::npos);
}

TEST(VerifyOp2Access, GuardedRunIsBitIdenticalToUnguarded) {
  LineMesh plain, guarded;
  guarded.ctx.set_verify(verify::kAccess | verify::kBounds | verify::kPlan);
  for (int s = 0; s < 3; ++s) {
    plain.sweep();
    guarded.sweep();
  }
  EXPECT_EQ(plain.q->to_vector(), guarded.q->to_vector());
  EXPECT_EQ(plain.res->to_vector(), guarded.res->to_vector());
  EXPECT_TRUE(guarded.ctx.verify_report().entries().empty());
}

// ---- OP2 bounds validation --------------------------------------------------

TEST(VerifyOp2Bounds, OutOfRangeMapIsRejectedAtDeclaration) {
  // Declaration-time rejection is unconditional (the Map constructor
  // validates before the guarded re-check even runs): the diagnostic must
  // name the map, the bad index and the target set.
  LineMesh m;
  m.ctx.set_verify(verify::kBounds);
  std::vector<index_t> tbl(static_cast<std::size_t>(m.n - 1), 0);
  tbl[4] = 99;  // nodes has only 12 elements
  EXPECT_APL_ERROR("outside target set 'nodes'",
                   m.ctx.decl_map(*m.edges, *m.nodes, 1, tbl, "bad"));
  EXPECT_APL_ERROR("Map 'bad'",
                   m.ctx.decl_map(*m.edges, *m.nodes, 1, tbl, "bad"));
}

TEST(VerifyOp2Bounds, InjectedMapCorruptionIsCaughtPerLoop) {
  // Satellite of the fault layer: OPAL_FAULTS corrupt_map=name@I plants an
  // out-of-range index at the next par_loop; guarded bounds revalidation
  // must report it naming the map, entry and target set.
  LineMesh m;
  m.ctx.set_verify(verify::kBounds);
  apl::fault::Injector::global().arm(
      apl::fault::parse_config("corrupt_map=e2n@3"));
  EXPECT_APL_ERROR("map 'e2n'", m.sweep());
  apl::fault::Injector::global().disarm();
  const verify::Entry* e = m.ctx.verify_report().find("flux", verify::kBounds);
  ASSERT_NE(e, nullptr);
  // Table index 3 is row 1, component 1 of the arity-2 map.
  EXPECT_NE(e->detail.find("entry [1,1]"), std::string::npos);
  EXPECT_NE(e->detail.find("outside target set 'nodes'"), std::string::npos);
}

// ---- OP2 plan race audit ----------------------------------------------------

TEST(VerifyOp2Plan, TamperedColoringIsReportedAsRace) {
  LineMesh m;
  const std::vector<op2::ArgInfo> args = {
      op2::arg(*m.res, *m.e2n, 0, Access::kInc).info(),
      op2::arg(*m.res, *m.e2n, 1, Access::kInc).info()};
  op2::Plan p = op2::detail::build_plan(m.ctx, *m.edges, args, 4);
  ASSERT_TRUE(p.has_conflicts);
  EXPECT_TRUE(op2::audit_plan(m.ctx, *m.edges, args, p).empty());
  // Collapse every color: neighbouring edges now run "concurrently".
  std::fill(p.block_color.begin(), p.block_color.end(), 0);
  std::fill(p.elem_color.begin(), p.elem_color.end(), 0);
  const std::string diag = op2::audit_plan(m.ctx, *m.edges, args, p);
  EXPECT_NE(diag.find("race between elements"), std::string::npos);
  EXPECT_NE(diag.find("dat 'res'"), std::string::npos);
}

TEST(VerifyOp2Plan, ThreadsBackendPlanAuditsClean) {
  LineMesh m;
  m.ctx.set_verify(verify::kPlan);
  m.ctx.set_backend(apl::exec::Backend::kThreads);
  m.sweep();  // plan_for audits the freshly built plan under kPlan
  EXPECT_TRUE(m.ctx.verify_report().entries().empty());
}

// ---- OP2 halo consistency ---------------------------------------------------

TEST(VerifyOp2Halo, OutOfBandOwnerWriteIsReportedStale) {
  LineMesh m;
  m.ctx.set_verify(verify::kHalo);
  op2::Distributed dist(m.ctx, 2, apl::graph::PartitionMethod::kBlock,
                        *m.nodes);
  auto gather = [&](const std::string& name) {
    dist.par_loop(name, *m.edges,
                  [](op2::Acc<double> qa, op2::Acc<double> qb,
                     op2::Acc<double> ra) { ra[0] += qa[0] + qb[0]; },
                  op2::arg(*m.q, *m.e2n, 0, Access::kRead),
                  op2::arg(*m.q, *m.e2n, 1, Access::kRead),
                  op2::arg(*m.res, *m.e2n, 0, Access::kInc));
  };
  gather("gather");  // ghosts are exchanged (or already coherent): clean
  // Write the owners' values behind the library's back: the dirty-bit
  // tracking never sees it, so no exchange happens and every ghost copy of
  // q is now stale.
  for (int r = 0; r < dist.num_ranks(); ++r) {
    auto& rq =
        static_cast<op2::Dat<double>&>(dist.rank_context(r).dat(m.q->id()));
    const index_t owned = dist.owned_count(*m.nodes, r);
    for (index_t e = 0; e < owned; ++e) rq.entry(e)[0] += 1.0;
  }
  EXPECT_APL_ERROR("stale halo copy", gather("gather2"));
  const verify::Entry* e =
      m.ctx.verify_report().find("gather2", verify::kHalo);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'q'"), std::string::npos);
}

// ---- OPS fixtures -----------------------------------------------------------

/// A 2D structured block with depth-1 halos and a 5-point stencil.
struct OpsGrid {
  explicit OpsGrid(index_t nx = 12, index_t ny = 6) : nx(nx), ny(ny) {
    ctx.set_verify(verify::kNone);
    grid = &ctx.decl_block(2, "grid");
    centre = &ctx.decl_stencil(2, {{{0, 0, 0}}}, "centre");
    five = &ctx.decl_stencil(
        2,
        {{{0, 0, 0}}, {{1, 0, 0}}, {{-1, 0, 0}}, {{0, 1, 0}}, {{0, -1, 0}}},
        "5pt");
    u = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                              "u");
    t = &ctx.decl_dat<double>(*grid, 1, {nx, ny, 1}, {1, 1, 0}, {1, 1, 0},
                              "t");
  }

  index_t nx, ny;
  ops::Context ctx;
  ops::Block* grid;
  ops::Stencil* centre;
  ops::Stencil* five;
  ops::Dat<double>* u;
  ops::Dat<double>* t;
};

// ---- OPS stencil + access enforcement ---------------------------------------

TEST(VerifyOpsStencil, AccessOutsideDeclaredStencilIsCaught) {
  OpsGrid g;
  g.ctx.set_verify(verify::kStencil);
  // u is declared with the zero-point stencil but the kernel reads u(1,0).
  EXPECT_APL_ERROR(
      "outside declared stencil 'centre'",
      ops::par_loop(g.ctx, "bad_stencil", *g.grid,
                    ops::Range::dim2(0, g.nx, 0, g.ny),
                    [](ops::Acc<double> u, ops::Acc<double> t) {
                      t(0, 0) = u(1, 0);
                    },
                    ops::arg(*g.u, *g.centre, Access::kRead),
                    ops::arg(*g.t, Access::kWrite)));
  const verify::Entry* e =
      g.ctx.verify_report().find("bad_stencil", verify::kStencil);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'u'"), std::string::npos);
  EXPECT_NE(e->detail.find("(1,0,0)"), std::string::npos);
}

TEST(VerifyOpsAccess, WriteThroughReadOnlyArgIsCaught) {
  OpsGrid g;
  g.ctx.set_verify(verify::kAccess);
  EXPECT_APL_ERROR(
      "declared kRead but the kernel wrote grid point",
      ops::par_loop(g.ctx, "bad_ops_write", *g.grid,
                    ops::Range::dim2(0, g.nx, 0, g.ny),
                    [](ops::Acc<double> u, ops::Acc<double> t) {
                      u(0, 0) = 5.0;
                      t(0, 0) = 1.0;
                    },
                    ops::arg(*g.u, *g.centre, Access::kRead),
                    ops::arg(*g.t, Access::kWrite)));
  const verify::Entry* e =
      g.ctx.verify_report().find("bad_ops_write", verify::kAccess);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'u'"), std::string::npos);
}

TEST(VerifyOpsAccess, WriteThroughReadOnlyGlobalIsCaught) {
  OpsGrid g;
  g.ctx.set_verify(verify::kAccess);
  double scale = 2.0;
  EXPECT_APL_ERROR(
      "declared kRead but the kernel modified component 0",
      ops::par_loop(g.ctx, "bad_gbl", *g.grid,
                    ops::Range::dim2(0, g.nx, 0, g.ny),
                    [](ops::Acc<double> t, double* s) {
                      t(0, 0) = s[0];
                      s[0] += 1.0;
                    },
                    ops::arg(*g.t, Access::kWrite),
                    ops::arg_gbl(&scale, 1, Access::kRead)));
  EXPECT_NE(g.ctx.verify_report().find("bad_gbl", verify::kAccess), nullptr);
}

// ---- OPS halo consistency ---------------------------------------------------

TEST(VerifyOpsHalo, OutOfBandOwnerWriteIsReportedStale) {
  OpsGrid g;
  g.ctx.set_verify(verify::kHalo);
  ops::Distributed dist(g.ctx, 2);
  dist.par_loop("init", *g.grid,
                ops::Range::dim2(-1, g.nx + 1, -1, g.ny + 1),
                [](ops::Acc<double> u, const int* idx) {
                  u(0, 0) = 0.1 * idx[0] + idx[1];
                },
                ops::arg(*g.u, Access::kWrite), ops::arg_idx());
  auto diff = [&](const std::string& name) {
    dist.par_loop(name, *g.grid, ops::Range::dim2(0, g.nx, 0, g.ny),
                  [](ops::Acc<double> u, ops::Acc<double> t) {
                    t(0, 0) = u(1, 0) + u(-1, 0) + u(0, 1) + u(0, -1);
                  },
                  ops::arg(*g.u, *g.five, Access::kRead),
                  ops::arg(*g.t, Access::kWrite));
  };
  diff("diff");  // exchanges the dirty halo of u: coherent
  // Bump every rank's *interior* (owned) points of u without telling the
  // library: interface ghost copies on the neighbouring rank go stale.
  for (int r = 0; r < dist.num_ranks(); ++r) {
    auto& ru =
        static_cast<ops::Dat<double>&>(dist.rank_context(r).dat(g.u->id()));
    for (index_t j = 0; j < ru.size()[1]; ++j) {
      for (index_t i = 0; i < ru.size()[0]; ++i) *ru.at(i, j) += 1.0;
    }
  }
  EXPECT_APL_ERROR("stale halo copy", diff("diff2"));
  const verify::Entry* e = g.ctx.verify_report().find("diff2", verify::kHalo);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->detail.find("dat 'u'"), std::string::npos);
}

// ---- verify-off default -----------------------------------------------------

TEST(VerifyOff, NoChecksLeaveReportEmpty) {
  LineMesh m;  // verification explicitly off
  m.sweep();
  EXPECT_FALSE(m.ctx.verifying(verify::kAccess));
  EXPECT_TRUE(m.ctx.verify_report().entries().empty());
}

}  // namespace
