// apl::plan_cache store semantics: round trips, every mismatch class as a
// named miss (cold, truncated, CRC, version bump), the section framing,
// and the corrupt_plan_cache fault trigger that tests the warm-load CRC
// path end to end.
#include "apl/io/plan_cache.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apl/fault.hpp"
#include "apl/thread_pool.hpp"

namespace {

namespace pc = apl::plan_cache;

struct PlanCacheFixture : ::testing::Test {
  void SetUp() override {
    dir = (std::filesystem::temp_directory_path() /
           ("plan_cache_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
              .string();
    std::filesystem::remove_all(dir);
    store.set_directory(dir);
  }
  void TearDown() override {
    apl::fault::Injector::global().disarm();
    std::filesystem::remove_all(dir);
  }

  pc::Key key(std::uint32_t version = 1) {
    pc::Key k;
    k.kind = "op2";
    k.topology = 0x1111;
    k.program = 0x2222;
    k.config = 0x3333;
    k.version = version;
    k.label = "res_calc";
    return k;
  }

  std::vector<std::uint8_t> payload() {
    pc::BlobWriter w;
    const std::vector<std::int32_t> body{1, 2, 3, 4};
    w.section_of<std::int32_t>(7, body);
    return w.take();
  }

  std::string entry_path(const pc::Key& k) {
    return dir + "/" + pc::Store::entry_name(k);
  }

  std::string dir;
  pc::Store store;
};

TEST_F(PlanCacheFixture, DisabledStoreIsInert) {
  pc::Store off;
  EXPECT_FALSE(off.enabled());
  off.save(key(), payload());
  EXPECT_FALSE(off.load(key()).has_value());
  EXPECT_EQ(off.stats().stores, 0u);
}

TEST_F(PlanCacheFixture, RoundTripHits) {
  const auto p = payload();
  store.save(key(), p);
  EXPECT_EQ(store.stats().stores, 1u);
  const auto loaded = store.load(key());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, p);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_TRUE(store.last_diagnostic().empty());
}

TEST_F(PlanCacheFixture, ColdLoadIsANamedMiss) {
  EXPECT_FALSE(store.load(key()).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().corrupt, 0u);
  // The diagnostic names the IR family and the loop.
  EXPECT_NE(store.last_diagnostic().find("op2"), std::string::npos);
  EXPECT_NE(store.last_diagnostic().find("res_calc"), std::string::npos);
}

TEST_F(PlanCacheFixture, VersionBumpInvalidates) {
  store.save(key(1), payload());
  // A new IR version gets its own entry name: the stale blob is simply
  // never consulted, not misread.
  EXPECT_FALSE(store.load(key(2)).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_NE(pc::Store::entry_name(key(1)), pc::Store::entry_name(key(2)));
  EXPECT_TRUE(store.load(key(1)).has_value());
}

TEST_F(PlanCacheFixture, DifferentHashesGetDifferentEntries) {
  store.save(key(), payload());
  pc::Key other = key();
  other.program = 0x9999;
  EXPECT_FALSE(store.load(other).has_value());
  EXPECT_TRUE(store.load(key()).has_value());
}

TEST_F(PlanCacheFixture, TruncatedBlobIsCorruptNotACrash) {
  store.save(key(), payload());
  const std::string path = entry_path(key());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);
  EXPECT_FALSE(store.load(key()).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_NE(store.last_diagnostic().find("truncated"), std::string::npos);
}

TEST_F(PlanCacheFixture, HeaderOnlyBlobIsCorrupt) {
  store.save(key(), payload());
  std::filesystem::resize_file(entry_path(key()), 10);
  EXPECT_FALSE(store.load(key()).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST_F(PlanCacheFixture, FlippedPayloadByteFailsCrc) {
  store.save(key(), payload());
  const std::string path = entry_path(key());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);  // last payload byte
    char c;
    f.seekg(-1, std::ios::end);
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x10));
  }
  EXPECT_FALSE(store.load(key()).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_NE(store.last_diagnostic().find("CRC"), std::string::npos);
}

TEST_F(PlanCacheFixture, CorruptPlanCacheFaultTriggersCrcPath) {
  // The injector flips a payload bit after the CRC is computed: the saved
  // blob must fail the warm load exactly like on-disk bitrot would.
  apl::fault::Injector::global().arm(
      apl::fault::parse_config("corrupt_plan_cache=2"));
  store.save(key(), payload());
  EXPECT_FALSE(store.load(key()).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_NE(store.last_diagnostic().find("CRC"), std::string::npos);

  // The trigger fires once: the next save is clean and hits.
  store.save(key(), payload());
  EXPECT_TRUE(store.load(key()).has_value());
}

TEST_F(PlanCacheFixture, NoteCorruptCountsIrLevelRejections) {
  store.save(key(), payload());
  ASSERT_TRUE(store.load(key()).has_value());
  store.note_corrupt("plan-ir: shape section missing");
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_EQ(store.last_diagnostic(), "plan-ir: shape section missing");
}

TEST_F(PlanCacheFixture, ScopedStorePropagatesIntoTeamWorkers) {
  // The thread-local store override must follow the submitting thread
  // into ThreadPool teams (via the apl::scope hook plan_cache registers),
  // or a served job's tile schedules would silently persist to the global
  // store instead of the tenant's.
  pc::Store::ScopedStore scoped(&store);
  ASSERT_EQ(&pc::Store::current(), &store);
  apl::ThreadPool pool(3);
  std::mutex mu;
  int hits = 0;
  pool.run_team([&](std::size_t) {
    const bool ok = &pc::Store::current() == &store;
    std::lock_guard<std::mutex> lock(mu);
    hits += ok;
  });
  EXPECT_EQ(hits, 3);
  // And the override stays thread-scoped: after the team, a fresh task
  // thread without the hook state sees the global store again.
  EXPECT_EQ(&pc::Store::current(), &store);
}

// ---- section framing --------------------------------------------------------

TEST(PlanCacheSections, RoundTrip) {
  pc::BlobWriter w;
  const std::vector<std::int32_t> a{5, 6, 7};
  const std::uint64_t b = 42;
  w.section_of<std::int32_t>(1, a);
  w.section_of<std::uint64_t>(2, {&b, 1});

  std::vector<std::int32_t> got_a;
  std::uint64_t got_b = 0;
  const pc::SectionHandler table[] = {
      {1,
       [&](std::span<const std::uint8_t> bytes) {
         pc::SectionReader r(bytes);
         return r.rest(&got_a);
       }},
      {2,
       [&](std::span<const std::uint8_t> bytes) {
         pc::SectionReader r(bytes);
         return r.pod(&got_b) && r.done();
       }},
  };
  EXPECT_EQ(pc::decode_sections(w.bytes(), table), "");
  EXPECT_EQ(got_a, a);
  EXPECT_EQ(got_b, 42u);
}

TEST(PlanCacheSections, UnknownTagIsRejected) {
  pc::BlobWriter w;
  const std::vector<std::int32_t> a{1};
  w.section_of<std::int32_t>(99, a);
  const pc::SectionHandler table[] = {
      {1, [](std::span<const std::uint8_t>) { return true; }},
  };
  const std::string diag = pc::decode_sections(w.bytes(), table);
  EXPECT_NE(diag.find("99"), std::string::npos);
}

TEST(PlanCacheSections, MissingMandatorySectionIsRejected) {
  pc::BlobWriter w;
  const std::vector<std::int32_t> a{1};
  w.section_of<std::int32_t>(1, a);
  const pc::SectionHandler table[] = {
      {1, [](std::span<const std::uint8_t>) { return true; }},
      {2, [](std::span<const std::uint8_t>) { return true; }},
  };
  EXPECT_NE(pc::decode_sections(w.bytes(), table), "");
  // ...unless declared optional.
  const std::uint32_t optional[] = {2};
  EXPECT_EQ(pc::decode_sections(w.bytes(), table, optional), "");
}

TEST(PlanCacheSections, TruncatedStreamIsRejected) {
  pc::BlobWriter w;
  const std::vector<std::int32_t> a{1, 2, 3, 4};
  w.section_of<std::int32_t>(1, a);
  auto bytes = w.take();
  bytes.resize(bytes.size() - 2);
  const pc::SectionHandler table[] = {
      {1, [](std::span<const std::uint8_t>) { return true; }},
  };
  EXPECT_NE(pc::decode_sections(bytes, table), "");
}

TEST(PlanCacheSections, ReaderRejectsPartialElements) {
  const std::vector<std::uint8_t> six(6, 0);  // not a multiple of 4
  pc::SectionReader r(six);
  std::vector<std::int32_t> out;
  EXPECT_FALSE(r.rest(&out));
}

}  // namespace
