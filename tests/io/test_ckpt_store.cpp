// CheckpointStore crash-safety tests: the two-slot atomic-rename protocol
// must leave a restorable checkpoint for a kill at EVERY byte offset of a
// save, torn writes must fall back to the previous generation via the CRC,
// and injected bitrot must never load silently.
#include "apl/io/ckpt.hpp"

#include <cstdlib>
#include <filesystem>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "apl/error.hpp"
#include "apl/fault.hpp"

namespace {

using apl::fault::Config;
using apl::fault::Injector;
using apl::io::CheckpointStore;
using apl::io::File;

std::string temp_base(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A generation-tagged payload large enough that the kill sweep crosses
/// header, several dataset payloads, CRCs and the manifest.
File make_file(double gen) {
  File f;
  std::vector<double> q(48), res(32);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = gen * 100.0 + i;
  for (std::size_t i = 0; i < res.size(); ++i) res[i] = -gen + 0.5 * i;
  const std::vector<std::int64_t> step{static_cast<std::int64_t>(gen)};
  f.put<double>("q", q, {q.size()});
  f.put<double>("res", res, {res.size()});
  f.put<std::int64_t>("meta/step", step, {1});
  return f;
}

bool same(const File& a, const File& b) {
  return a.serialize() == b.serialize();
}

class CkptStoreTest : public ::testing::Test {
 protected:
  void TearDown() override { Injector::global().disarm(); }
};

TEST_F(CkptStoreTest, RoundTripAndRotation) {
  CheckpointStore st(temp_base("ckpt_roundtrip"));
  st.remove_files();
  EXPECT_FALSE(st.any_valid());
  EXPECT_THROW(st.load(), apl::Error);

  st.save(make_file(1));
  EXPECT_EQ(st.latest_seq(), 1u);
  EXPECT_TRUE(same(st.load(), make_file(1)));

  st.save(make_file(2));
  EXPECT_EQ(st.latest_seq(), 2u);
  EXPECT_TRUE(same(st.load(), make_file(2)));

  // Two saves must occupy both slots (rotation, not overwrite).
  EXPECT_TRUE(std::filesystem::exists(st.slot_path(0)));
  EXPECT_TRUE(std::filesystem::exists(st.slot_path(1)));
  st.remove_files();
}

TEST_F(CkptStoreTest, RestartAdoptsExistingSlots) {
  const std::string base = temp_base("ckpt_adopt");
  {
    CheckpointStore st(base);
    st.remove_files();
    st.save(make_file(1));
    st.save(make_file(2));
  }
  CheckpointStore fresh(base);  // a restarted process
  EXPECT_TRUE(fresh.any_valid());
  EXPECT_EQ(fresh.latest_seq(), 2u);
  EXPECT_TRUE(same(fresh.load(), make_file(2)));
  // The next save must continue the sequence, not restart it.
  fresh.save(make_file(3));
  EXPECT_EQ(fresh.latest_seq(), 3u);
  fresh.remove_files();
}

// ---- the crash-safety property -------------------------------------------
//
// For EVERY byte offset K across the full write sequence of a save (slot
// file, then manifest), a kill after exactly K persisted bytes must leave a
// store from which a fresh process restores either the previous or the new
// generation — never garbage, never nothing.
TEST_F(CkptStoreTest, KillAtEveryByteOffsetLeavesRestorableCheckpoint) {
  const std::string base = temp_base("ckpt_killsweep");
  const File gen1 = make_file(1);
  const File gen2 = make_file(2);

  // Dry run to learn the write width of the gen2 save.
  std::uint64_t total = 0;
  {
    CheckpointStore st(base);
    st.remove_files();
    st.save(gen1);
    st.save(gen2);
    total = st.last_write_bytes();
    st.remove_files();
  }
  ASSERT_GT(total, 0u);

  for (std::uint64_t k = 0; k < total; ++k) {
    CheckpointStore st(base);
    st.save(gen1);

    Config cfg;
    cfg.kill_at_ckpt_byte = static_cast<std::int64_t>(k);
    Injector::global().arm(cfg);
    bool killed = false;
    try {
      st.save(gen2);
    } catch (const apl::fault::Kill&) {
      killed = true;
    }
    Injector::global().disarm();
    ASSERT_TRUE(killed) << "kill offset " << k << " never fired";

    CheckpointStore restarted(base);
    ASSERT_TRUE(restarted.any_valid()) << "kill offset " << k;
    File got;
    ASSERT_NO_THROW(got = restarted.load()) << "kill offset " << k;
    EXPECT_TRUE(same(got, gen1) || same(got, gen2))
        << "kill offset " << k << " restored neither generation";
    st.remove_files();
  }
}

// A torn write without a crash signal (truncate_checkpoint): the save
// "succeeds" but dropped every byte past K. The CRC must reject the torn
// slot on load and fall back to the surviving generation.
TEST_F(CkptStoreTest, TruncationAtEveryOffsetFallsBackViaCrc) {
  const std::string base = temp_base("ckpt_truncsweep");
  const File gen1 = make_file(1);
  const File gen2 = make_file(2);

  std::uint64_t total = 0;
  {
    CheckpointStore st(base);
    st.remove_files();
    st.save(gen1);
    st.save(gen2);
    total = st.last_write_bytes();
    st.remove_files();
  }

  for (std::uint64_t k = 0; k < total; ++k) {
    CheckpointStore st(base);
    st.save(gen1);

    Config cfg;
    cfg.truncate_checkpoint = static_cast<std::int64_t>(k);
    Injector::global().arm(cfg);
    EXPECT_NO_THROW(st.save(gen2)) << "truncate offset " << k;
    Injector::global().disarm();

    CheckpointStore restarted(base);
    ASSERT_TRUE(restarted.any_valid()) << "truncate offset " << k;
    const File got = restarted.load();
    EXPECT_TRUE(same(got, gen1) || same(got, gen2))
        << "truncate offset " << k << " restored neither generation";
    st.remove_files();
  }
}

TEST_F(CkptStoreTest, CorruptedPayloadByteFallsBackToPreviousGeneration) {
  const std::string base = temp_base("ckpt_corrupt");
  CheckpointStore st(base);
  st.remove_files();
  st.save(make_file(1));

  Config cfg;
  cfg.corrupt_dataset = "q";
  cfg.corrupt_byte = 17;
  Injector::global().arm(cfg);
  st.save(make_file(2));
  Injector::global().disarm();

  CheckpointStore restarted(base);
  // The CRC was computed over the clean payload, so the flipped byte must
  // invalidate the newest slot and the previous generation must win.
  EXPECT_TRUE(same(restarted.load(), make_file(1)));
  st.remove_files();
}

TEST_F(CkptStoreTest, CheckFiniteNamesTheOffendingDataset) {
  File f = make_file(1);
  std::vector<double> bad = {1.0, std::numeric_limits<double>::quiet_NaN()};
  f.put<double>("velocity", bad, {2});
  try {
    apl::io::check_finite(f, "test");
    FAIL() << "check_finite accepted a NaN";
  } catch (const apl::Error& e) {
    EXPECT_NE(std::string(e.what()).find("velocity"), std::string::npos)
        << e.what();
  }
}

TEST_F(CkptStoreTest, LoadScansForNaNWhenEnvEnabled) {
  const std::string base = temp_base("ckpt_nan");
  CheckpointStore st(base);
  st.remove_files();
  File f = make_file(1);
  std::vector<double> bad = {std::numeric_limits<double>::infinity()};
  f.put<double>("energy", bad, {1});
  st.save(f);

  EXPECT_NO_THROW(st.load());  // CRC is fine; the bytes are "valid"
  setenv("OPAL_CHECK_FINITE", "1", 1);
  EXPECT_THROW(st.load(), apl::Error);
  unsetenv("OPAL_CHECK_FINITE");
  st.remove_files();
}

TEST_F(CkptStoreTest, FaultSpecParsing) {
  const Config c = apl::fault::parse_config(
      "kill_at_loop=12,corrupt_dataset=q@64,fail_rank=2@5,seed=9");
  EXPECT_EQ(c.kill_at_loop, 12);
  EXPECT_EQ(c.corrupt_dataset, "q");
  EXPECT_EQ(c.corrupt_byte, 64);
  EXPECT_EQ(c.fail_rank, 2);
  EXPECT_EQ(c.fail_at_exchange, 5);
  EXPECT_EQ(c.seed, 9u);
  // Unknown triggers warn (collected via the out-param) instead of
  // throwing, so older specs keep working across library versions.
  std::vector<std::string> unknown;
  const Config u = apl::fault::parse_config("explode=now,kill_at_loop=3",
                                            &unknown);
  EXPECT_EQ(u.kill_at_loop, 3);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "explode");
  // Malformed values of known triggers still throw.
  EXPECT_THROW(apl::fault::parse_config("kill_at_loop=banana"), apl::Error);
}

}  // namespace
