#include "apl/io/h5lite.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "apl/error.hpp"

namespace {

using apl::io::File;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(H5Lite, PutGetRoundTrip) {
  File f;
  const std::vector<double> q = {1.0, 2.5, -3.0, 4.0};
  f.put<double>("q", q, {2, 2});
  EXPECT_TRUE(f.contains("q"));
  EXPECT_EQ(f.get<double>("q"), q);
  EXPECT_EQ(f.raw("q").dims, (std::vector<std::uint64_t>{2, 2}));
}

TEST(H5Lite, TypedMismatchThrows) {
  File f;
  const std::vector<double> q = {1.0};
  f.put<double>("q", q, {1});
  EXPECT_THROW(f.get<std::int32_t>("q"), apl::Error);
}

TEST(H5Lite, MissingDatasetThrows) {
  File f;
  EXPECT_THROW(f.get<double>("nope"), apl::Error);
}

TEST(H5Lite, DimsMustMatchData) {
  File f;
  const std::vector<double> q = {1.0, 2.0, 3.0};
  EXPECT_THROW(f.put<double>("q", q, {2, 2}), apl::Error);
}

TEST(H5Lite, SaveLoadRoundTrip) {
  const std::string path = temp_path("h5lite_roundtrip.h5l");
  {
    File f;
    const std::vector<double> x = {0.5, 1.5, 2.5};
    const std::vector<std::int32_t> map = {0, 1, 1, 2};
    f.put<double>("coords", x, {3});
    f.put<std::int32_t>("edge_map", map, {2, 2});
    f.save(path);
  }
  const File g = File::load(path);
  EXPECT_EQ(g.get<double>("coords"), (std::vector<double>{0.5, 1.5, 2.5}));
  EXPECT_EQ(g.get<std::int32_t>("edge_map"),
            (std::vector<std::int32_t>{0, 1, 1, 2}));
  std::remove(path.c_str());
}

TEST(H5Lite, EmptyFileRoundTrips) {
  const std::string path = temp_path("h5lite_empty.h5l");
  File().save(path);
  EXPECT_TRUE(File::load(path).all().empty());
  std::remove(path.c_str());
}

TEST(H5Lite, CorruptedPayloadFailsCrc) {
  const std::string path = temp_path("h5lite_corrupt.h5l");
  {
    File f;
    const std::vector<double> x(64, 1.0);
    f.put<double>("x", x, {64});
    f.save(path);
  }
  {
    // Flip one byte in the middle of the payload.
    std::fstream s(path, std::ios::in | std::ios::out | std::ios::binary);
    s.seekp(64);
    char b = 0x5a;
    s.write(&b, 1);
  }
  EXPECT_THROW(File::load(path), apl::Error);
  std::remove(path.c_str());
}

TEST(H5Lite, TruncatedFileFails) {
  const std::string path = temp_path("h5lite_trunc.h5l");
  {
    File f;
    const std::vector<double> x(64, 2.0);
    f.put<double>("x", x, {64});
    f.save(path);
  }
  std::filesystem::resize_file(path, 40);
  EXPECT_THROW(File::load(path), apl::Error);
  std::remove(path.c_str());
}

TEST(H5Lite, NotAnH5LiteFileFails) {
  const std::string path = temp_path("h5lite_garbage.h5l");
  std::ofstream(path) << "definitely not a dataset container";
  EXPECT_THROW(File::load(path), apl::Error);
  std::remove(path.c_str());
}

TEST(H5Lite, ReplaceOverwrites) {
  File f;
  f.put<double>("x", std::vector<double>{1.0}, {1});
  f.put<double>("x", std::vector<double>{2.0, 3.0}, {2});
  EXPECT_EQ(f.get<double>("x"), (std::vector<double>{2.0, 3.0}));
}

TEST(H5Lite, RemoveDeletes) {
  File f;
  f.put<double>("x", std::vector<double>{1.0}, {1});
  f.remove("x");
  EXPECT_FALSE(f.contains("x"));
}

TEST(H5Lite, TruncationErrorNamesDatasetAndOrigin) {
  const std::string path = temp_path("h5lite_trunc_named.h5l");
  {
    File f;
    f.put<double>("pressure", std::vector<double>(16, 1.0), {16});
    f.save(path);
  }
  // Cut inside pressure's payload: the error must say which dataset and
  // which file could not be read, not just "bad file".
  std::filesystem::resize_file(path, 60);
  try {
    File::load(path);
    FAIL() << "truncated load did not throw";
  } catch (const apl::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pressure"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(H5Lite, SerializeParseRoundTrip) {
  File f;
  f.put<double>("x", std::vector<double>{1.0, 2.0}, {2});
  f.put<std::int32_t>("ids", std::vector<std::int32_t>{7, 8, 9}, {3});
  const auto bytes = f.serialize();
  const File g = File::parse(bytes, "mem");
  EXPECT_EQ(g.get<double>("x"), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(g.get<std::int32_t>("ids"), (std::vector<std::int32_t>{7, 8, 9}));
}

TEST(H5Lite, DatasetPayloadOffsetFindsBytes) {
  File f;
  const std::vector<double> x = {4.25, -1.0};
  f.put<double>("x", x, {2});
  const auto bytes = f.serialize();
  const auto off = apl::io::dataset_payload_offset(bytes, "x");
  ASSERT_TRUE(off.has_value());
  double first;
  std::memcpy(&first, bytes.data() + *off, sizeof(double));
  EXPECT_DOUBLE_EQ(first, 4.25);
  EXPECT_FALSE(apl::io::dataset_payload_offset(bytes, "nope").has_value());
}

TEST(H5Lite, Crc32KnownVector) {
  // CRC32("123456789") == 0xCBF43926, the standard check value.
  const std::string s = "123456789";
  const auto crc = apl::io::crc32(
      {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  EXPECT_EQ(crc, 0xCBF43926u);
}

}  // namespace
